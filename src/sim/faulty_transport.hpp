// Seeded, deterministic network-fault injection over a service::Transport.
//
// The netchaos harness (DESIGN.md §15) needs every wire failure the serving
// tier claims to survive — loss, duplication, reordering, delay, bit
// corruption, truncation, partitions — as a *replayable* schedule: the same
// seed must produce the same fault sequence so a failing run is a
// deterministic regression, exactly like sim::FaultModel does for
// measurement failures.
//
// FaultyTransport decorates any Transport and applies fates per *message
// unit*. It is frame-aware: a `pwu1 <len> <crc32>` header line and the
// payload line that follows it travel (and fail) together, so an injected
// fault always lands on a whole message, never tears one in half. The
// intended stack puts the verifier above the injector:
//
//   FramedTransport( FaultyTransport( PipeTransport ) )
//
// so corruption hits the checksummed wire bytes and the framing layer is
// what detects it.
//
// Determinism without wall-clock: a Dropped reply surfaces as FrameError
// (the stand-in for "the reply never arrived and the connection resynced"),
// a partition window surfaces as TransportError *without touching the
// inner transport* — the peer process stays alive behind the partition,
// which is what makes split-brain tests possible. Delay is virtual-clock:
// a delayed unit is released after N later units, not after N seconds.
//
// Fates come from an explicit script when one is set (unit tests pin exact
// sequences) and from the seeded probability schedule otherwise.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/transport.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pwu::sim {

/// One message unit's fate. Reorder and Delay hold the unit back and need
/// at least one later unit in flight (use them inside pipelined windows).
enum class WireFate {
  Deliver,
  Drop,           // unit lost -> FrameError at the matching recv
  Duplicate,      // unit delivered twice, back to back
  Reorder,        // unit swapped with the next one
  Delay,          // unit released after the next two units (virtual clock)
  CorruptPayload, // one payload byte flipped (CRC catches it)
  CorruptHeader,  // one header byte flipped (resync catches it)
  Truncate,       // payload cut in half (length check catches it)
};

/// Per-fate probabilities for schedule-driven runs; the remainder up to 1
/// is Deliver. Fates are drawn from a seeded stream per message unit.
struct FaultSchedule {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  double corrupt_payload = 0.0;
  double corrupt_header = 0.0;
  double truncate = 0.0;
  std::uint64_t seed = 0;
};

struct FaultStats {
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t delayed = 0;
  std::size_t corrupted = 0;
  std::size_t truncated = 0;
  std::size_t partition_rejections = 0;
};

class FaultyTransport : public service::Transport {
 public:
  /// Throws std::invalid_argument when the schedule's probabilities are
  /// negative or sum above 1.
  FaultyTransport(std::unique_ptr<service::Transport> inner,
                  FaultSchedule schedule);

  /// Requests pass through un-faulted (reply-side faults exercise every
  /// client recovery path without wall-clock timeouts); a partition window
  /// rejects them like everything else.
  void send(const std::string& line) override;
  /// A framed pair arrives atomically: one partition check, one unit on
  /// the wire — identical semantics to the buffered header+payload path
  /// send() uses when the caller frames by hand.
  void send_frame(const std::string& header,
                  const std::string& payload) override;
  std::string recv() override;
  void ensure_running() override;
  bool alive() const override;

  /// Fixes the fates of the next `fates.size()` reply units, consumed
  /// FIFO; after that the probability schedule resumes. Replaces any
  /// unconsumed previous script.
  void script(std::vector<WireFate> fates);

  /// Opens a partition: the next `ops` send/recv attempts throw
  /// TransportError without touching the inner transport (the peer process
  /// survives behind the partition). Virtual-clock "timed" windows.
  void partition_for(std::size_t ops);
  /// Closes the partition window early.
  void heal();
  bool partitioned() const { return partition_ops_ > 0; }

  const FaultStats& stats() const { return stats_; }
  service::Transport& inner() { return *inner_; }

 private:
  /// A message unit: the lines that must travel together (header+payload
  /// for a framed message, one line otherwise).
  using Unit = std::vector<std::string>;

  /// Throws TransportError when inside a partition window (consuming one
  /// window op).
  void check_partition();
  /// Reads one whole unit from the inner transport.
  Unit read_unit();
  /// Draws/consumes the next fate and applies it, appending deliverable
  /// lines to queue_.
  void pump_one_unit();
  WireFate next_fate();
  void enqueue(const Unit& unit);
  /// Ticks held (delayed) units and releases the expired ones.
  void release_due();

  std::unique_ptr<service::Transport> inner_;
  FaultSchedule schedule_;
  util::Rng rng_ PWU_RNG_STREAM(fault_schedule);
  std::vector<WireFate> scripted_;
  std::size_t next_scripted_ = 0;
  // Deliverable reply lines (vector + cursor, compacted when drained).
  std::vector<std::string> queue_;
  std::size_t next_line_ = 0;
  // Delayed units: (units still to pass before release, unit).
  std::vector<std::pair<std::size_t, Unit>> held_;
  // Replies the inner transport still owes us (sent units minus read
  // units) — what lets Reorder/Delay demote to Deliver instead of
  // blocking on a reply nobody requested.
  std::size_t outstanding_ = 0;
  std::size_t partition_ops_ = 0;
  // Header line buffered until its payload arrives (send-side unit glue).
  std::string pending_send_;
  bool has_pending_send_ = false;
  FaultStats stats_;
};

}  // namespace pwu::sim
