// Working-set cache cost model used by the SPAPT kernel simulators.
//
// The model answers: given the bytes a loop nest touches between reuses
// (its working set), what is the average latency per memory access? The
// answer blends the platform's cache-level latencies with a smooth
// transition around each capacity boundary, which reproduces the
// characteristic staircase response of loop tiling: performance improves as
// tiles shrink into a cache level, then loop overhead takes over.

#pragma once

#include "sim/platform.hpp"

namespace pwu::sim {

class CacheModel {
 public:
  explicit CacheModel(const Platform& platform) : platform_(platform) {}

  /// Average seconds per 8-byte access for a working set of `bytes`,
  /// assuming streaming access with reuse distance equal to the working set.
  double access_seconds(double working_set_bytes) const;

  /// Fraction of accesses that hit at or above the level that holds
  /// `working_set_bytes` (diagnostic; in [0,1], higher is better).
  double hit_ratio(double working_set_bytes) const;

  /// Multiplicative efficiency of a tiled loop nest: 1.0 when the tile's
  /// working set fits comfortably in L1, rising (slower) toward the
  /// memory-bound ratio as the working set grows. `bytes_per_iter` scales
  /// arithmetic intensity: lower intensity = more memory sensitivity.
  double tiling_penalty(double working_set_bytes,
                        double bytes_per_flop) const;

  const Platform& platform() const { return platform_; }

 private:
  /// Smooth occupancy of a cache of `capacity` bytes by a working set.
  static double occupancy(double working_set_bytes, double capacity_bytes);

  const Platform& platform_;
};

}  // namespace pwu::sim
