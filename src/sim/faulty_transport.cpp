#include "sim/faulty_transport.hpp"

#include <stdexcept>

#include "service/protocol.hpp"

namespace pwu::sim {

namespace {

/// Flips one low bit of one byte — always changes the line, never by more
/// than the CRC (or the header parser) can notice.
void flip_byte(std::string& line,
               util::Rng& rng PWU_RNG_STREAM(fault_schedule)) {
  if (line.empty()) {
    line.push_back('?');
    return;
  }
  const std::size_t i = rng.index(line.size());
  line[i] = static_cast<char>(line[i] ^ 0x01);
}

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<service::Transport> inner,
                                 FaultSchedule schedule)
    : inner_(std::move(inner)), schedule_(schedule), rng_(schedule.seed) {
  const double probs[] = {schedule_.drop,           schedule_.duplicate,
                          schedule_.reorder,        schedule_.delay,
                          schedule_.corrupt_payload, schedule_.corrupt_header,
                          schedule_.truncate};
  double sum = 0.0;
  for (const double p : probs) {
    if (p < 0.0) {
      throw std::invalid_argument(
          "FaultSchedule: fault probabilities must be non-negative");
    }
    sum += p;
  }
  if (sum > 1.0) {
    throw std::invalid_argument(
        "FaultSchedule: fault probabilities sum above 1");
  }
}

void FaultyTransport::check_partition() {
  if (partition_ops_ == 0) return;
  --partition_ops_;
  ++stats_.partition_rejections;
  throw service::TransportError("network partition (injected)");
}

void FaultyTransport::send(const std::string& line) {
  service::FrameHeader header;
  if (!has_pending_send_ && service::parse_frame_header(line, header)) {
    // A frame header travels with the payload line that follows it; hold
    // it so a partition can only ever reject the *whole* message.
    pending_send_ = line;
    has_pending_send_ = true;
    return;
  }
  if (has_pending_send_) {
    const std::string head = std::move(pending_send_);
    has_pending_send_ = false;
    check_partition();
    inner_->send(head);
    inner_->send(line);
  } else {
    check_partition();
    inner_->send(line);
  }
  ++outstanding_;
}

void FaultyTransport::send_frame(const std::string& header,
                                 const std::string& payload) {
  check_partition();
  inner_->send_frame(header, payload);
  ++outstanding_;
}

FaultyTransport::Unit FaultyTransport::read_unit() {
  Unit unit;
  std::string first = inner_->recv();
  service::FrameHeader header;
  const bool framed = service::parse_frame_header(first, header);
  unit.push_back(std::move(first));
  if (framed) unit.push_back(inner_->recv());
  if (outstanding_ > 0) --outstanding_;
  return unit;
}

WireFate FaultyTransport::next_fate() {
  if (next_scripted_ < scripted_.size()) return scripted_[next_scripted_++];
  const double x = rng_.uniform();
  double acc = schedule_.drop;
  if (x < acc) return WireFate::Drop;
  acc += schedule_.duplicate;
  if (x < acc) return WireFate::Duplicate;
  acc += schedule_.reorder;
  if (x < acc) return WireFate::Reorder;
  acc += schedule_.delay;
  if (x < acc) return WireFate::Delay;
  acc += schedule_.corrupt_payload;
  if (x < acc) return WireFate::CorruptPayload;
  acc += schedule_.corrupt_header;
  if (x < acc) return WireFate::CorruptHeader;
  acc += schedule_.truncate;
  if (x < acc) return WireFate::Truncate;
  return WireFate::Deliver;
}

void FaultyTransport::enqueue(const Unit& unit) {
  for (const std::string& line : unit) queue_.push_back(line);
}

void FaultyTransport::release_due() {
  // One virtual-clock tick: every held unit gets one unit closer to
  // release; the expired ones are delivered in hold order.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].first <= 1) {
      enqueue(held_[i].second);
    } else {
      held_[kept] = {held_[i].first - 1, std::move(held_[i].second)};
      ++kept;
    }
  }
  held_.resize(kept);
}

void FaultyTransport::pump_one_unit() {
  Unit unit = read_unit();
  WireFate fate = next_fate();
  // Reorder needs a later reply to swap with and Delay needs two more
  // ticks; when this unit is the last one outstanding, demote to Deliver
  // so a schedule-driven run can never stall waiting for a reply that was
  // never requested.
  if ((fate == WireFate::Reorder && outstanding_ == 0) ||
      (fate == WireFate::Delay && outstanding_ < 2)) {
    fate = WireFate::Deliver;
  }
  switch (fate) {
    case WireFate::Deliver:
      ++stats_.delivered;
      enqueue(unit);
      break;
    case WireFate::Drop:
      ++stats_.dropped;
      release_due();
      // The unit is consumed (the wire is clean at a frame boundary); the
      // missing reply surfaces as the retryable frame-loss error rather
      // than a wall-clock timeout, keeping chaos runs deterministic.
      throw service::FrameError("reply lost (injected drop)");
    case WireFate::Duplicate:
      ++stats_.duplicated;
      enqueue(unit);
      enqueue(unit);
      break;
    case WireFate::Reorder: {
      ++stats_.reordered;
      const Unit next = read_unit();
      enqueue(next);
      enqueue(unit);
      break;
    }
    case WireFate::Delay:
      ++stats_.delayed;
      held_.emplace_back(2, std::move(unit));
      break;
    case WireFate::CorruptPayload:
      ++stats_.corrupted;
      flip_byte(unit.back(), rng_);
      enqueue(unit);
      break;
    case WireFate::CorruptHeader:
      ++stats_.corrupted;
      flip_byte(unit.front(), rng_);
      enqueue(unit);
      break;
    case WireFate::Truncate:
      ++stats_.truncated;
      unit.back().resize(unit.back().size() / 2);
      enqueue(unit);
      break;
  }
  release_due();
}

std::string FaultyTransport::recv() {
  check_partition();
  while (next_line_ >= queue_.size()) {
    if (outstanding_ == 0 && !held_.empty()) {
      // No further replies are coming to tick the virtual clock; flush the
      // held units now rather than blocking on a recv that cannot succeed.
      for (auto& held : held_) enqueue(held.second);
      held_.clear();
      continue;
    }
    pump_one_unit();
  }
  std::string line = std::move(queue_[next_line_]);
  ++next_line_;
  if (next_line_ == queue_.size()) {
    queue_.clear();
    next_line_ = 0;
  }
  return line;
}

void FaultyTransport::ensure_running() {
  if (partition_ops_ > 0) {
    throw service::TransportError("network partition (injected)");
  }
  if (!inner_->alive()) {
    // A fresh peer process means every buffered line belonged to the dead
    // incarnation.
    queue_.clear();
    next_line_ = 0;
    held_.clear();
    has_pending_send_ = false;
    outstanding_ = 0;
  }
  inner_->ensure_running();
}

bool FaultyTransport::alive() const {
  return partition_ops_ == 0 && inner_->alive();
}

void FaultyTransport::script(std::vector<WireFate> fates) {
  scripted_ = std::move(fates);
  next_scripted_ = 0;
}

void FaultyTransport::partition_for(std::size_t ops) { partition_ops_ = ops; }

void FaultyTransport::heal() { partition_ops_ = 0; }

}  // namespace pwu::sim
