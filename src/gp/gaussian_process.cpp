#include "gp/gaussian_process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/statistics.hpp"

namespace pwu::gp {

namespace {

KernelPtr build_kernel(const GpConfig& config, double lengthscale) {
  if (config.kernel == "rbf") {
    return make_rbf(config.signal_variance, lengthscale);
  }
  if (config.kernel == "matern52") {
    return make_matern52(config.signal_variance, lengthscale);
  }
  throw std::invalid_argument("GaussianProcess: unknown kernel '" +
                              config.kernel + "'");
}

}  // namespace

std::vector<double> GaussianProcess::normalize(
    std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = (row[f] - feat_min_[f]) / feat_range_[f];
  }
  return out;
}

void GaussianProcess::fit(const rf::Dataset& data, const GpConfig& config) {
  if (data.empty()) {
    throw std::invalid_argument("GaussianProcess::fit: empty dataset");
  }
  config_ = config;
  const std::size_t n = data.size();
  const std::size_t d = data.num_features();

  // Min-max normalization of features.
  feat_min_.assign(d, 1e300);
  feat_range_.assign(d, 0.0);
  std::vector<double> feat_max(d, -1e300);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f) {
      feat_min_[f] = std::min(feat_min_[f], data.x(i, f));
      feat_max[f] = std::max(feat_max[f], data.x(i, f));
    }
  }
  for (std::size_t f = 0; f < d; ++f) {
    feat_range_[f] = std::max(feat_max[f] - feat_min_[f], 1e-12);
  }

  train_ = rf::FeatureMatrix::with_capacity(d, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = data.row(i);
    auto dst = train_.append_row();
    for (std::size_t f = 0; f < d; ++f) {
      dst[f] = (src[f] - feat_min_[f]) / feat_range_[f];
    }
  }

  // Label standardization.
  label_mean_ = util::mean(data.labels());
  label_std_ = std::max(util::stddev(data.labels()), 1e-12);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = (data.y(i) - label_mean_) / label_std_;
  }

  // Lengthscale via the median pairwise distance (subsampled for large n).
  double lengthscale = config.lengthscale;
  if (config.median_heuristic && n >= 4) {
    std::vector<double> distances;
    const std::size_t stride = std::max<std::size_t>(1, n / 64);
    for (std::size_t i = 0; i < n; i += stride) {
      for (std::size_t j = i + stride; j < n; j += stride) {
        double sq = 0.0;
        for (std::size_t f = 0; f < d; ++f) {
          const double diff = train_(i, f) - train_(j, f);
          sq += diff * diff;
        }
        distances.push_back(std::sqrt(sq));
      }
    }
    const double med = util::median(distances);
    if (med > 1e-9) lengthscale = med;
  }
  kernel_ = build_kernel(config, lengthscale);

  // K + noise I, factorize with jitter escalation.
  double jitter = config.noise_variance;
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = (*kernel_)(train_.row(i), train_.row(j));
        k.at(i, j) = v;
        k.at(j, i) = v;
      }
    }
    k.add_diagonal(jitter);
    if (cholesky_factorize(k)) {
      chol_ = std::move(k);
      alpha_ = cholesky_solve(chol_, y);
      fitted_ = true;
      return;
    }
    jitter *= 100.0;
  }
  throw std::runtime_error(
      "GaussianProcess::fit: kernel matrix not positive definite even "
      "after jitter escalation");
}

double GaussianProcess::predict(std::span<const double> row) const {
  return predict_full(row).mean;
}

GpPrediction GaussianProcess::predict_full(std::span<const double> row) const {
  if (!fitted_) {
    throw std::logic_error("GaussianProcess::predict before fit");
  }
  const std::vector<double> x = normalize(row);
  const std::size_t n = train_.num_rows();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = (*kernel_)(x, train_.row(i));
  }

  GpPrediction pred;
  pred.mean = label_mean_ + label_std_ * dot(k_star, alpha_);

  // var = k(x,x) - v^T v with v = L^-1 k*.
  const std::vector<double> v = forward_substitute(chol_, k_star);
  const double reduced = kernel_->self_variance() - dot(v, v);
  pred.variance = std::max(0.0, reduced) * label_std_ * label_std_;
  pred.stddev = std::sqrt(pred.variance);
  return pred;
}

}  // namespace pwu::gp
