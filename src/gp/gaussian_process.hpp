// Gaussian-process regression (Rasmussen & Williams Algorithm 2.1): exact
// inference with a Cholesky factorization of the noisy kernel matrix.
//
// Serves as the alternative surrogate the paper argues *against* for mixed
// numerical/categorical tuning spaces (Section II-B); the RF-vs-GP
// ablation bench quantifies that argument on our benchmark set. Features
// are min-max normalized and labels standardized internally, so the fixed
// kernel hyper-parameters behave sensibly across workloads; the
// `median_heuristic` option sets the lengthscale from the data.

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "gp/kernel.hpp"
#include "gp/linalg.hpp"
#include "rf/dataset.hpp"
#include "rf/feature_matrix.hpp"

namespace pwu::gp {

struct GpConfig {
  /// Kernel family: "rbf" or "matern52".
  std::string kernel = "matern52";
  double signal_variance = 1.0;
  double lengthscale = 0.3;
  /// Observation-noise variance added to the kernel diagonal (also the
  /// jitter that keeps the factorization positive definite).
  double noise_variance = 1e-4;
  /// Replace `lengthscale` with the median pairwise distance of the
  /// (normalized) training inputs — a standard parameter-free choice.
  bool median_heuristic = true;
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
};

class GaussianProcess {
 public:
  /// Fits exact GP regression to the dataset (O(n^3) in the number of
  /// rows). Throws std::runtime_error if the kernel matrix cannot be
  /// factorized even after jitter escalation.
  void fit(const rf::Dataset& data, const GpConfig& config = {});

  bool fitted() const { return fitted_; }
  std::size_t num_train() const { return train_.num_rows(); }

  /// Posterior mean (de-standardized to label units).
  double predict(std::span<const double> row) const;

  /// Posterior mean and variance (variance in label units squared).
  GpPrediction predict_full(std::span<const double> row) const;

  const GpConfig& config() const { return config_; }

 private:
  std::vector<double> normalize(std::span<const double> row) const;

  GpConfig config_;
  KernelPtr kernel_;
  rf::FeatureMatrix train_;  // normalized inputs, one contiguous buffer
  Matrix chol_;                             // lower Cholesky of K + noise I
  std::vector<double> alpha_;               // (K + noise I)^-1 y~
  std::vector<double> feat_min_, feat_range_;
  double label_mean_ = 0.0;
  double label_std_ = 1.0;
  bool fitted_ = false;
};

}  // namespace pwu::gp
