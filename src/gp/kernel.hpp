// Covariance kernels for the Gaussian-process surrogate.
//
// The paper (Section II-B) contrasts GP regression — "works well for
// numerical features but not categorical features" — with the random
// forest it adopts. We implement the GP faithfully to that critique: the
// standard kernels below treat every feature numerically (a categorical
// level index becomes a coordinate), which is exactly the mis-modeling the
// paper attributes to GPs on mixed spaces. The ablation bench measures it.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pwu::gp {

class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual const std::string& name() const = 0;
  /// Covariance between two (normalized) feature vectors.
  virtual double operator()(std::span<const double> a,
                            std::span<const double> b) const = 0;
  /// Prior variance at a point, k(x, x).
  virtual double self_variance() const = 0;
};

using KernelPtr = std::unique_ptr<Kernel>;

/// Squared-exponential (RBF): k = s2 * exp(-0.5 * sum ((a-b)/l)^2), with a
/// shared lengthscale across (normalized) dimensions.
KernelPtr make_rbf(double signal_variance = 1.0, double lengthscale = 0.3);

/// Matern 5/2 — rougher sample paths, the usual choice for performance
/// surfaces in Bayesian-optimization practice (SMAC, Spearmint).
KernelPtr make_matern52(double signal_variance = 1.0,
                        double lengthscale = 0.3);

/// RBF with per-dimension (ARD) lengthscales.
KernelPtr make_rbf_ard(double signal_variance,
                       std::vector<double> lengthscales);

}  // namespace pwu::gp
