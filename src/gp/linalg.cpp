#include "gp/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace pwu::gp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::add_diagonal(double value) {
  if (rows_ != cols_) {
    throw std::logic_error("Matrix::add_diagonal: matrix not square");
  }
  for (std::size_t i = 0; i < rows_; ++i) at(i, i) += value;
}

bool cholesky_factorize(Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_factorize: matrix not square");
  }
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = sum / ljj;
    }
    // Zero the strictly-upper part for hygiene.
    for (std::size_t c = j + 1; c < n; ++c) a.at(j, c) = 0.0;
  }
  return true;
}

std::vector<double> forward_substitute(const Matrix& l,
                                       std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) {
    throw std::invalid_argument("forward_substitute: size mismatch");
  }
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }
  return y;
}

std::vector<double> backward_substitute(const Matrix& l,
                                        std::span<const double> y) {
  const std::size_t n = l.rows();
  if (y.size() != n) {
    throw std::invalid_argument("backward_substitute: size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l.at(k, i) * x[k];
    x[i] = sum / l.at(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::vector<double> y = forward_substitute(l, b);
  return backward_substitute(l, y);
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace pwu::gp
