#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace pwu::gp {

namespace {

class RbfKernel final : public Kernel {
 public:
  RbfKernel(double signal_variance, double lengthscale)
      : s2_(signal_variance), inv_l2_(1.0 / (lengthscale * lengthscale)) {
    if (signal_variance <= 0.0 || lengthscale <= 0.0) {
      throw std::invalid_argument("RBF kernel: parameters must be positive");
    }
    name_ = "rbf";
  }

  const std::string& name() const override { return name_; }

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override {
    double sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sq += d * d;
    }
    return s2_ * std::exp(-0.5 * sq * inv_l2_);
  }

  double self_variance() const override { return s2_; }

 private:
  double s2_;
  double inv_l2_;
  std::string name_;
};

class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double signal_variance, double lengthscale)
      : s2_(signal_variance), inv_l_(1.0 / lengthscale) {
    if (signal_variance <= 0.0 || lengthscale <= 0.0) {
      throw std::invalid_argument(
          "Matern52 kernel: parameters must be positive");
    }
    name_ = "matern52";
  }

  const std::string& name() const override { return name_; }

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override {
    double sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sq += d * d;
    }
    const double r = std::sqrt(sq) * inv_l_;
    const double sqrt5_r = std::sqrt(5.0) * r;
    return s2_ * (1.0 + sqrt5_r + 5.0 / 3.0 * r * r) * std::exp(-sqrt5_r);
  }

  double self_variance() const override { return s2_; }

 private:
  double s2_;
  double inv_l_;
  std::string name_;
};

class RbfArdKernel final : public Kernel {
 public:
  RbfArdKernel(double signal_variance, std::vector<double> lengthscales)
      : s2_(signal_variance) {
    if (signal_variance <= 0.0) {
      throw std::invalid_argument("ARD kernel: signal variance must be > 0");
    }
    inv_l2_.reserve(lengthscales.size());
    for (double l : lengthscales) {
      if (l <= 0.0) {
        throw std::invalid_argument("ARD kernel: lengthscales must be > 0");
      }
      inv_l2_.push_back(1.0 / (l * l));
    }
    name_ = "rbf-ard";
  }

  const std::string& name() const override { return name_; }

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override {
    if (a.size() != inv_l2_.size()) {
      throw std::invalid_argument("ARD kernel: dimension mismatch");
    }
    double sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sq += d * d * inv_l2_[i];
    }
    return s2_ * std::exp(-0.5 * sq);
  }

  double self_variance() const override { return s2_; }

 private:
  double s2_;
  std::vector<double> inv_l2_;
  std::string name_;
};

}  // namespace

KernelPtr make_rbf(double signal_variance, double lengthscale) {
  return std::make_unique<RbfKernel>(signal_variance, lengthscale);
}

KernelPtr make_matern52(double signal_variance, double lengthscale) {
  return std::make_unique<Matern52Kernel>(signal_variance, lengthscale);
}

KernelPtr make_rbf_ard(double signal_variance,
                       std::vector<double> lengthscales) {
  return std::make_unique<RbfArdKernel>(signal_variance,
                                        std::move(lengthscales));
}

}  // namespace pwu::gp
