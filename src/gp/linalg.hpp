// Minimal dense linear algebra for the Gaussian-process surrogate:
// row-major matrices, Cholesky factorization, and triangular solves. Sized
// for kernel matrices of a few hundred rows (the active-learning training
// sets); no BLAS dependency.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pwu::gp {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  /// Adds `value` to every diagonal entry (requires square).
  void add_diagonal(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky factorization A = L L^T of a symmetric
/// positive-definite matrix; only the lower triangle of the result is
/// meaningful. Returns false if a non-positive pivot is hit (A not PD).
bool cholesky_factorize(Matrix& a);

/// Solves L y = b (forward substitution) given the lower-triangular factor.
std::vector<double> forward_substitute(const Matrix& l,
                                       std::span<const double> b);

/// Solves L^T x = y (backward substitution).
std::vector<double> backward_substitute(const Matrix& l,
                                        std::span<const double> y);

/// Solves (L L^T) x = b via the two triangular solves.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// Dot product of two equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace pwu::gp
