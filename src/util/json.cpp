#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pwu::util::json {

namespace {

[[noreturn]] void type_error(const char* want, Type got) {
  static const char* names[] = {"null",  "boolean", "number",
                                "string", "array",   "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           names[static_cast<int>(got)]);
}

const Value& null_value() {
  static const Value null;
  return null;
}

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void dump_to(std::string& out, const Value& v) {
  switch (v.type()) {
    case Type::Null:
      out += "null";
      break;
    case Type::Boolean:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::Number: {
      const double d = v.as_number();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no Inf/NaN
        break;
      }
      char buf[32];
      // Shortest representation that round-trips the double exactly.
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
      out.append(buf, ptr);
      break;
    }
    case Type::String:
      escape_to(out, v.as_string());
      break;
    case Type::ArrayT: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_to(out, item);
      }
      out.push_back(']');
      break;
    }
    case Type::ObjectT: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        escape_to(out, key);
        out.push_back(':');
        dump_to(out, value);
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  // Containers nested past this depth are rejected rather than recursed
  // into: the parser is recursive-descent, and a hostile "[[[[..." line
  // must exhaust the error path, not the stack.
  static constexpr std::size_t kMaxDepth = 100;

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) parser_.fail("nesting too deep");
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    DepthGuard depth(*this);
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    DepthGuard depth(*this);
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (basic plane only; surrogate
          // pairs are beyond what the protocol needs).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON forbids leading zeros: 0 may only start a number when followed
    // by '.', 'e'/'E', or nothing numeric.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last || first == last) {
      pos_ = start;
      fail("bad number");
    }
    return Value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Boolean) type_error("boolean", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::ArrayT) type_error("array", type_);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::ObjectT) type_error("object", type_);
  return object_;
}

Array& Value::as_array() {
  if (type_ != Type::ArrayT) type_error("array", type_);
  return array_;
}

Object& Value::as_object() {
  if (type_ != Type::ObjectT) type_error("object", type_);
  return object_;
}

const Value& Value::at(const std::string& key) const {
  if (type_ != Type::ObjectT) return null_value();
  const auto it = object_.find(key);
  return it == object_.end() ? null_value() : it->second;
}

bool Value::has(const std::string& key) const { return !at(key).is_null(); }

double Value::number_or(const std::string& key, double fallback) const {
  const Value& v = at(key);
  return v.is_number() ? v.as_number() : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  const Value& v = at(key);
  return v.is_string() ? v.as_string() : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value& v = at(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, *this);
  return out;
}

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace pwu::util::json
