#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace pwu::util {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

LogLevel init_from_env() {
  const char* env = std::getenv("PWU_LOG");
  return env ? parse_log_level(env) : LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(init_from_env());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const auto now = std::chrono::system_clock::now();
  const auto time = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&time, &tm_buf);
  static std::mutex io_mutex;
  std::lock_guard lock(io_mutex);
  std::fprintf(stderr, "[%02d:%02d:%02d.%03d] %s %s\n", tm_buf.tm_hour,
               tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms),
               level_name(level), message.c_str());
}

}  // namespace pwu::util
