#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pwu::util {

namespace {

struct Bounds {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();

  void include(double x, double y) {
    x_min = std::min(x_min, x);
    x_max = std::max(x_max, x);
    y_min = std::min(y_min, y);
    y_max = std::max(y_max, y);
  }

  bool valid() const { return x_min <= x_max && y_min <= y_max; }
};

double maybe_log(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-300));
}

std::string format_tick(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) < 1e-2 || std::abs(v) >= 1e4)) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
  }
  return os.str();
}

std::string render_grid(const std::vector<ChartSeries>& series,
                        const ChartOptions& opt) {
  Bounds b;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double x = maybe_log(s.x[i], opt.log_x);
      const double y = maybe_log(s.y[i], opt.log_y);
      if (std::isfinite(x) && std::isfinite(y)) b.include(x, y);
    }
  }
  std::ostringstream os;
  if (!opt.title.empty()) os << opt.title << '\n';
  if (!b.valid()) {
    os << "  (no finite data)\n";
    return os.str();
  }
  if (b.x_max == b.x_min) b.x_max = b.x_min + 1.0;
  if (b.y_max == b.y_min) b.y_max = b.y_min + 1.0;

  const std::size_t w = std::max<std::size_t>(opt.width, 16);
  const std::size_t h = std::max<std::size_t>(opt.height, 6);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double x = maybe_log(s.x[i], opt.log_x);
      const double y = maybe_log(s.y[i], opt.log_y);
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      const double fx = (x - b.x_min) / (b.x_max - b.x_min);
      const double fy = (y - b.y_min) / (b.y_max - b.y_min);
      const auto col = static_cast<std::size_t>(
          std::round(fx * static_cast<double>(w - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(
          std::round(fy * static_cast<double>(h - 1)));
      const std::size_t row = h - 1 - row_from_bottom;
      grid[row][col] = s.marker;
    }
  }

  const std::string y_hi = format_tick(opt.log_y ? std::pow(10.0, b.y_max)
                                                 : b.y_max);
  const std::string y_lo = format_tick(opt.log_y ? std::pow(10.0, b.y_min)
                                                 : b.y_min);
  const std::size_t label_width = std::max(y_hi.size(), y_lo.size());

  for (std::size_t r = 0; r < h; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = y_hi;
    if (r == h - 1) label = y_lo;
    os << std::setw(static_cast<int>(label_width)) << label << " |"
       << grid[r] << '\n';
  }
  os << std::string(label_width + 1, ' ') << '+'
     << std::string(w, '-') << '\n';
  const std::string x_lo = format_tick(opt.log_x ? std::pow(10.0, b.x_min)
                                                 : b.x_min);
  const std::string x_hi = format_tick(opt.log_x ? std::pow(10.0, b.x_max)
                                                 : b.x_max);
  os << std::string(label_width + 2, ' ') << x_lo
     << std::string(w > x_lo.size() + x_hi.size()
                        ? w - x_lo.size() - x_hi.size()
                        : 1,
                    ' ')
     << x_hi << '\n';
  if (!opt.x_label.empty() || !opt.y_label.empty()) {
    os << "  x: " << opt.x_label;
    if (!opt.y_label.empty()) os << "   y: " << opt.y_label;
    if (opt.log_y) os << " (log scale)";
    os << '\n';
  }
  os << "  legend:";
  for (const auto& s : series) {
    os << "  '" << s.marker << "' " << s.label;
  }
  os << '\n';
  return os.str();
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  return render_grid(series, options);
}

std::string render_scatter(const ChartSeries& background,
                           const ChartSeries& foreground,
                           const ChartOptions& options) {
  return render_grid({background, foreground}, options);
}

}  // namespace pwu::util
