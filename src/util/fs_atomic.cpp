#include "util/fs_atomic.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/killpoints.hpp"

namespace pwu::util {

namespace {

constexpr char kFooterTag[] = "pwu-crc32";

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " for '" + path +
                           "': " + std::strerror(errno));
}

/// Writes all of `data` to `fd`, honouring short writes.
void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string crc_footer(std::string_view payload) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %08x %zu\n", kFooterTag, crc32(payload),
                payload.size());
  return buf;
}

std::string backup_path(const std::string& path) { return path + ".bak"; }

const char* to_string(ReadStatus status) {
  switch (status) {
    case ReadStatus::Ok: return "ok";
    case ReadStatus::Missing: return "missing";
    case ReadStatus::Corrupt: return "corrupt";
  }
  return "unknown";
}

void atomic_write_file(const std::string& path, std::string_view payload,
                       bool keep_backup) {
  const std::string tmp = path + ".tmp";
  const std::string footer = crc_footer(payload);

  killpoint("atomic_write.begin");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp file", tmp);
  try {
    // Split the payload so a mid-write kill point leaves a genuinely torn
    // temp file (first half, no footer) for the chaos harness to find.
    const std::size_t half = payload.size() / 2;
    write_all(fd, payload.substr(0, half), tmp);
    killpoint("atomic_write.mid_write");
    write_all(fd, payload.substr(half), tmp);
    write_all(fd, footer, tmp);
    if (::fsync(fd) != 0) fail("fsync failed", tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) fail("close failed", tmp);

  killpoint("atomic_write.before_rename");
  if (keep_backup) {
    // Rotate the previous good file out of the way. ENOENT (first write)
    // is fine; the rename below fully replaces `path` either way.
    if (::rename(path.c_str(), backup_path(path).c_str()) != 0 &&
        errno != ENOENT) {
      ::unlink(tmp.c_str());  // genuine failure: don't leak the temp file
      fail("backup rotation failed", path);
    }
    killpoint("atomic_write.after_backup");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    ::unlink(tmp.c_str());  // genuine failure (bad path): don't leak
    errno = rename_errno;
    fail("rename failed", path);
  }
  killpoint("atomic_write.done");
}

VerifiedRead read_verified_file(const std::string& path) {
  VerifiedRead result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.status = ReadStatus::Missing;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();

  // The footer is the final line: "pwu-crc32 <hex8> <bytes>\n".
  result.status = ReadStatus::Corrupt;
  if (contents.empty() || contents.back() != '\n') return result;
  const std::size_t line_start =
      contents.find_last_of('\n', contents.size() - 2);
  const std::size_t footer_pos =
      line_start == std::string::npos ? 0 : line_start + 1;
  std::istringstream footer(contents.substr(footer_pos));
  std::string tag;
  std::string hex;
  std::size_t size = 0;
  if (!(footer >> tag >> hex >> size) || tag != kFooterTag) return result;
  std::uint32_t stored = 0;
  try {
    stored = static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16));
  } catch (const std::exception&) {
    return result;
  }
  contents.resize(footer_pos);
  if (contents.size() != size || crc32(contents) != stored) return result;
  result.status = ReadStatus::Ok;
  result.payload = std::move(contents);
  return result;
}

RecoveredRead read_checkpoint_with_fallback(const std::string& path) {
  RecoveredRead result;
  VerifiedRead primary = read_verified_file(path);
  if (primary.status == ReadStatus::Ok) {
    result.status = ReadStatus::Ok;
    result.payload = std::move(primary.payload);
    result.source_path = path;
    return result;
  }
  VerifiedRead backup = read_verified_file(backup_path(path));
  if (backup.status == ReadStatus::Ok) {
    result.status = ReadStatus::Ok;
    result.payload = std::move(backup.payload);
    result.used_fallback = true;
    result.source_path = backup_path(path);
    return result;
  }
  // Corrupt dominates Missing: "there was a checkpoint but it is bad" is
  // the actionable diagnosis.
  result.status = primary.status == ReadStatus::Corrupt ||
                          backup.status == ReadStatus::Corrupt
                      ? ReadStatus::Corrupt
                      : ReadStatus::Missing;
  return result;
}

}  // namespace pwu::util
