#include "util/resource_budget.hpp"

namespace pwu::util {

std::size_t ResourceBudget::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void ResourceBudget::set_capacity(std::size_t bytes) {
  std::lock_guard lock(mutex_);
  capacity_ = bytes;
}

std::size_t ResourceBudget::charge(const std::string& key, std::size_t bytes) {
  std::lock_guard lock(mutex_);
  const auto it = charges_.find(key);
  if (it != charges_.end()) {
    total_ -= it->second;
    if (bytes == 0) {
      charges_.erase(it);
    } else {
      it->second = bytes;
      total_ += bytes;
    }
  } else if (bytes != 0) {
    charges_.emplace(key, bytes);
    total_ += bytes;
  }
  return total_;
}

std::size_t ResourceBudget::used() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::size_t ResourceBudget::used(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = charges_.find(key);
  return it == charges_.end() ? 0 : it->second;
}

bool ResourceBudget::over_capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_ != 0 && total_ > capacity_;
}

std::size_t ResourceBudget::excess() const {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0 || total_ <= capacity_) return 0;
  return total_ - capacity_;
}

}  // namespace pwu::util
