// Aligned plain-text tables for console reports (paper-style rows).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pwu::util {

/// Collects rows of string cells and prints them column-aligned.
class TextTable {
 public:
  /// Sets the header row (optional).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; rows may have differing lengths.
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (fixed notation).
  static std::string cell(double value, int precision = 4);
  /// Scientific notation cell.
  static std::string cell_sci(double value, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with two-space column gaps and a rule under the header.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pwu::util
