#include "util/options.hpp"

#include <cstdlib>
#include <sstream>

namespace pwu::util {

std::optional<long long> env_int(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return value;
}

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

BenchOptions BenchOptions::from_env() {
  BenchOptions opts;
  if (env_int("PWU_FULL").value_or(0) != 0) {
    opts.full = true;
    opts.repeats = 10;
    opts.n_max = 500;
    opts.pool_size = 7000;
    opts.test_size = 3000;
    opts.num_trees = 50;
    opts.eval_every = 5;
  }
  auto override_size = [](std::size_t& slot, const char* name) {
    if (auto v = env_int(name); v && *v > 0) {
      slot = static_cast<std::size_t>(*v);
    }
  };
  override_size(opts.repeats, "PWU_REPEATS");
  override_size(opts.n_max, "PWU_NMAX");
  override_size(opts.n_init, "PWU_NINIT");
  override_size(opts.pool_size, "PWU_POOL");
  override_size(opts.test_size, "PWU_TEST");
  override_size(opts.num_trees, "PWU_TREES");
  override_size(opts.eval_every, "PWU_EVAL_EVERY");
  if (auto v = env_int("PWU_SEED"); v) {
    opts.seed = static_cast<std::uint64_t>(*v);
  }
  if (auto v = env_string("PWU_OUT"); v) {
    opts.out_dir = *v;
  }
  return opts;
}

std::string BenchOptions::describe() const {
  std::ostringstream os;
  os << (full ? "paper-scale" : "ci-scale") << " (repeats=" << repeats
     << ", n_init=" << n_init << ", n_max=" << n_max << ", pool=" << pool_size
     << ", test=" << test_size << ", trees=" << num_trees
     << ", eval_every=" << eval_every << ", seed=" << seed << ")";
  return os.str();
}

}  // namespace pwu::util
