// Crash-safe file persistence: the one sanctioned way to write a
// checkpoint (or any other must-not-be-torn file) to its final path.
//
// atomic_write_file() writes payload + a CRC32 footer to `<path>.tmp`,
// fsyncs, and renames over `path`, optionally rotating the previous good
// file to `<path>.bak` first. A crash at any instant therefore leaves
// either the old good file, the new good file, or (mid-rotation) the good
// file under the backup name — never a torn final file without a fallback.
// read_checkpoint_with_fallback() is the matching recovery read: it
// verifies the footer and falls back to the backup when the newest copy is
// truncated or corrupt.
//
// The pwu_lint rule `atomic-checkpoint` enforces that persistence code
// routes final-path writes through this helper.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pwu::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
std::uint32_t crc32(std::string_view data);

/// The footer line appended to every atomically written file:
/// "pwu-crc32 <hex8> <payload-bytes>\n".
std::string crc_footer(std::string_view payload);

/// Path of the previous-good rotation target for `path` ("<path>.bak").
std::string backup_path(const std::string& path);

/// Durably replaces `path` with payload + CRC footer (tmp, fsync, rename).
/// With `keep_backup`, an existing `path` is rotated to backup_path(path)
/// first. Throws std::runtime_error when any filesystem step fails.
void atomic_write_file(const std::string& path, std::string_view payload,
                       bool keep_backup = true);

enum class ReadStatus { Ok, Missing, Corrupt };

const char* to_string(ReadStatus status);

struct VerifiedRead {
  ReadStatus status = ReadStatus::Missing;
  /// Payload with the CRC footer stripped; empty unless status == Ok.
  std::string payload;
};

/// Reads `path` and verifies the CRC footer. Truncated, torn, or
/// footer-less files come back Corrupt, absent files Missing.
VerifiedRead read_verified_file(const std::string& path);

struct RecoveredRead {
  ReadStatus status = ReadStatus::Missing;
  std::string payload;
  /// True when the newest file was bad and the backup supplied the payload.
  bool used_fallback = false;
  /// The file that supplied the payload (empty unless status == Ok).
  std::string source_path;
};

/// Recovery read: `path` first, then backup_path(path) when the newest copy
/// is missing or fails verification. Corrupt means *both* copies are bad.
RecoveredRead read_checkpoint_with_fallback(const std::string& path);

}  // namespace pwu::util
