// Deterministic, fork-able random number generation.
//
// All stochastic components of the library (pool sampling, bootstrap
// resampling, feature subspace selection, measurement noise, strategy
// tie-breaking) draw from an explicitly threaded `Rng` instance so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** seeded through splitmix64, following the reference
// constructions of Blackman & Vigna.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace pwu::util {

/// Counter-free pseudo random generator (xoshiro256**).
///
/// Not thread-safe; use `fork()` to derive statistically independent child
/// streams for worker threads or repeated experiments.
class Rng {
 public:
  /// Seeds the four-word state via splitmix64 so that any 64-bit value,
  /// including 0, yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller with caching of the second variate.
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Derives an independent child stream (also reseeds this stream's
  /// sequence position, so repeated forks yield distinct children).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  /// Uses Floyd's algorithm for small k and a partial shuffle otherwise.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// n indices drawn uniformly *with* replacement from [0, n) — the bootstrap
  /// resample used by bagging.
  std::vector<std::size_t> bootstrap_indices(std::size_t n);

  /// Index drawn proportionally to the (non-negative) weights. Requires at
  /// least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Writes the full generator state (stream words + Box-Muller cache) as
  /// text; a loaded generator continues the sequence bit-identically.
  void save(std::ostream& os) const;
  /// Restores state written by save(); throws std::runtime_error on
  /// malformed input.
  void load(std::istream& is);

  /// Full-state equality (sequence position and normal cache).
  bool operator==(const Rng& other) const;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pwu::util
