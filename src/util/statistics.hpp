// Descriptive statistics and error measures shared across the library.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pwu::util {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 values.
double variance(std::span<const double> values);

/// Population variance (n denominator); 0 when empty.
double population_variance(std::span<const double> values);

/// sqrt(variance).
double stddev(std::span<const double> values);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Median (copies the data); 0 for empty input.
double median(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1]; copies the data.
double quantile(std::span<const double> values, double q);

/// Root mean squared error between two equal-length vectors.
double rmse(std::span<const double> truth, std::span<const double> predicted);

/// Mean absolute error.
double mae(std::span<const double> truth, std::span<const double> predicted);

/// Mean absolute percentage error (skips entries with |truth| < 1e-300).
double mape(std::span<const double> truth, std::span<const double> predicted);

/// Kendall rank correlation coefficient (tau-a), O(n^2). Returns 0 for n < 2.
double kendall_tau(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Indices that would sort `values` ascending (stable).
std::vector<std::size_t> argsort(std::span<const double> values);

/// Index of the smallest / largest element. Requires non-empty input.
std::size_t argmin(std::span<const double> values);
std::size_t argmax(std::span<const double> values);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

}  // namespace pwu::util
