// Contract macros with formatted diagnostics.
//
// PWU_REQUIRE (precondition), PWU_ENSURE (postcondition) and PWU_ASSERT
// (invariant) check hot internal assumptions — index bounds, state-machine
// transitions, geometry of batched buffers — that the public API's
// exception-based validation deliberately does not re-check on every call.
//
// Checked builds (Debug and the asan/tsan presets, i.e. whenever NDEBUG is
// absent) evaluate the condition and, on failure, print a formatted
// diagnostic and abort:
//
//     pwu contract violation: precondition failed
//       expression: lo <= hi
//       location:   src/util/rng.cpp:58
//       message:    uniform_int: lo=5 hi=2
//
// Release builds compile the checks out entirely (the condition is parsed,
// never evaluated), so contracts are free on the hot path. The optional
// message is a '<<'-chain evaluated only on failure:
//
//     PWU_REQUIRE(row < size(), "row=" << row << " size=" << size());
//
// Tests install a throwing handler (set_contract_handler) to assert on
// violations without death tests; override the default with
// -DPWU_CONTRACTS_ENABLED=0/1 to force either mode.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef PWU_CONTRACTS_ENABLED
#ifdef NDEBUG
#define PWU_CONTRACTS_ENABLED 0
#else
#define PWU_CONTRACTS_ENABLED 1
#endif
#endif

namespace pwu::util {

/// Thrown by the (test-oriented) throwing handler; carries the structured
/// pieces of the diagnostic in addition to the formatted what().
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string kind, std::string expression, std::string file,
                    int line, std::string message);

  const std::string& kind() const { return kind_; }
  const std::string& expression() const { return expression_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  const std::string& message() const { return message_; }

 private:
  std::string kind_;
  std::string expression_;
  std::string file_;
  int line_;
  std::string message_;
};

/// Called with the violation; returning hands control back to contract_fail,
/// which aborts. A handler may throw instead (the test idiom).
using ContractHandler = void (*)(const ContractViolation&);

/// Installs `handler` (nullptr restores the default) and returns the
/// previous one. The default prints the diagnostic to stderr and aborts.
ContractHandler set_contract_handler(ContractHandler handler);

/// Invoked by the macros on a failed check. Runs the installed handler;
/// aborts if the handler returns.
[[noreturn]] void contract_fail(const char* kind, const char* expression,
                                const char* file, int line,
                                const std::string& message);

namespace detail {
/// Rvalue-friendly message builder so the macros can stream into a
/// temporary: (ContractMessage{} << "n=" << n).str().
class ContractMessage {
 public:
  template <typename T>
  ContractMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pwu::util

#if PWU_CONTRACTS_ENABLED
#define PWU_CONTRACT_CHECK_(kind, cond, ...)                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::pwu::util::contract_fail(                                     \
          kind, #cond, __FILE__, __LINE__,                            \
          (::pwu::util::detail::ContractMessage {}                    \
           __VA_OPT__(<< __VA_ARGS__))                                \
              .str());                                                \
    }                                                                 \
  } while (false)
#else
// Parsed but never evaluated: no runtime cost, and identifiers used only in
// contracts never become "unused" in Release.
#define PWU_CONTRACT_CHECK_(kind, cond, ...) \
  do {                                       \
    if (false) {                             \
      (void)(cond);                          \
    }                                        \
  } while (false)
#endif

/// Precondition on a function's arguments / callable state.
#define PWU_REQUIRE(cond, ...) PWU_CONTRACT_CHECK_("precondition", cond, __VA_ARGS__)
/// Postcondition a function guarantees on exit.
#define PWU_ENSURE(cond, ...) PWU_CONTRACT_CHECK_("postcondition", cond, __VA_ARGS__)
/// Internal invariant that must hold mid-computation.
#define PWU_ASSERT(cond, ...) PWU_CONTRACT_CHECK_("invariant", cond, __VA_ARGS__)

// ---------------------------------------------------------------------------
// Static-analysis annotations (pwu_lint; zero runtime cost)
// ---------------------------------------------------------------------------

/// Marks a member field as protected by `mutex`; pwu_lint's
/// no-unlocked-mutable rule then flags accesses without an in-scope lock.
/// Place after the declarator: `std::size_t count_ PWU_GUARDED_BY(mutex_);`
#define PWU_GUARDED_BY(mutex)

/// Names the deterministic RNG stream an `util::Rng` member or parameter
/// carries; pwu_lint's rng-stream-discipline rule requires every draw to
/// resolve to an annotated stream (or a fork/copy of one). Place after the
/// declarator: `util::Rng rng_ PWU_RNG_STREAM(session);`
#define PWU_RNG_STREAM(name)
