// Lightweight leveled logging to stderr with wall-clock timestamps.
//
// The log level is taken from the PWU_LOG environment variable
// (debug|info|warn|error, default info) and can be overridden
// programmatically.

#pragma once

#include <sstream>
#include <string>

namespace pwu::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the current threshold (initialized from PWU_LOG on first use).
LogLevel log_level();

/// Overrides the threshold for the remainder of the process.
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive); defaults to info.
LogLevel parse_log_level(const std::string& name);

/// Emits one line: `[HH:MM:SS.mmm] LEVEL message` when `level` passes the
/// threshold. Thread-safe (single formatted write).
void log(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace pwu::util
