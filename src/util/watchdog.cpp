#include "util/watchdog.hpp"

#include <chrono>

namespace pwu::util {

std::int64_t SteadyTickSource::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Watchdog::arm(const TickSource& ticks, std::int64_t budget_ms) {
  std::lock_guard lock(mutex_);
  if (budget_ms <= 0) {
    ticks_ = nullptr;
    budget_ms_ = 0;
    return;
  }
  ticks_ = &ticks;
  budget_ms_ = budget_ms;
  armed_at_ms_ = ticks.now_ms();
}

void Watchdog::disarm() {
  std::lock_guard lock(mutex_);
  ticks_ = nullptr;
  budget_ms_ = 0;
}

bool Watchdog::armed() const {
  std::lock_guard lock(mutex_);
  return ticks_ != nullptr;
}

bool Watchdog::expired() const {
  std::lock_guard lock(mutex_);
  if (ticks_ == nullptr) return false;
  return ticks_->now_ms() - armed_at_ms_ > budget_ms_;
}

std::int64_t Watchdog::elapsed_ms() const {
  std::lock_guard lock(mutex_);
  if (ticks_ == nullptr) return 0;
  return ticks_->now_ms() - armed_at_ms_;
}

}  // namespace pwu::util
