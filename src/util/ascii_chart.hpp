// Terminal line/scatter charts so the figure-reproduction binaries can show
// the paper's plots directly in the console, alongside their numeric tables.

#pragma once

#include <string>
#include <vector>

namespace pwu::util {

/// One named series on a chart.
struct ChartSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct ChartOptions {
  std::size_t width = 72;   // plot columns
  std::size_t height = 18;  // plot rows
  bool log_y = false;       // base-10 log scale on y
  bool log_x = false;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders the series into a fixed-size character grid with axis
/// annotations and a marker legend. Series are drawn in order; later series
/// overwrite earlier ones where they collide.
std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options);

/// Scatter helper: renders (x, y) points of two point clouds, used by the
/// Fig. 9 selected-sample distribution reproduction.
std::string render_scatter(const ChartSeries& background,
                           const ChartSeries& foreground,
                           const ChartOptions& options);

}  // namespace pwu::util
