// Minimal CSV emission for experiment traces and figure data.

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pwu::util {

/// Writes RFC-4180-style CSV rows (quoting fields containing separators).
/// The file is flushed and closed on destruction.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; each field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: header then nothing else.
  void write_header(const std::vector<std::string>& names);

  /// Formats doubles with full round-trip precision.
  static std::string field(double value);
  static std::string field(std::size_t value);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& raw);

  std::string path_;
  std::ofstream out_;
};

}  // namespace pwu::util
