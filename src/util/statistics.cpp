#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pwu::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double population_variance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

namespace {
void check_equal_size(std::span<const double> a, std::span<const double> b,
                      const char* what) {
  if (a.size() != b.size()) throw std::invalid_argument(what);
}
}  // namespace

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  check_equal_size(truth, predicted, "rmse: size mismatch");
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(std::span<const double> truth, std::span<const double> predicted) {
  check_equal_size(truth, predicted, "mae: size mismatch");
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double mape(std::span<const double> truth, std::span<const double> predicted) {
  check_equal_size(truth, predicted, "mape: size mismatch");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < 1e-300) continue;
    acc += std::abs((truth[i] - predicted[i]) / truth[i]);
    ++n;
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  check_equal_size(a, b, "kendall_tau: size mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) ++concordant;
      else if (prod < 0.0) ++discordant;
    }
  }
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<double>(concordant - discordant) / pairs;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  check_equal_size(a, b, "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<std::size_t> argsort(std::span<const double> values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t i, std::size_t j) {
    return values[i] < values[j];
  });
  return idx;
}

std::size_t argmin(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("argmin: empty input");
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmax(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.q25 = quantile(values, 0.25);
  s.median = median(values);
  s.q75 = quantile(values, 0.75);
  s.max = max_value(values);
  return s;
}

}  // namespace pwu::util
