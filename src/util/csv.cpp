#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace pwu::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_header(const std::vector<std::string>& names) {
  write_row(names);
}

std::string CsvWriter::field(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string CsvWriter::field(std::size_t value) {
  return std::to_string(value);
}

std::string CsvWriter::escape(const std::string& raw) {
  const bool needs_quotes =
      raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace pwu::util
