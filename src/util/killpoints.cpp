#include "util/killpoints.hpp"

#include <atomic>
#include <map>
#include <mutex>

namespace pwu::util {

namespace {

struct KillState {
  std::mutex mutex;
  /// name -> remaining passes before the throw (0 = next pass throws).
  std::map<std::string, int> armed;  // pwu-lint: guarded-by(mutex)
  std::map<std::string, int> hits;   // pwu-lint: guarded-by(mutex)
};

KillState& state() {
  static KillState s;
  return s;
}

/// Fast-path gate so disarmed production code pays one relaxed load.
std::atomic<bool> g_any_armed{false};

}  // namespace

void arm_killpoint(const std::string& name, int after_hits) {
  KillState& s = state();
  std::lock_guard lock(s.mutex);
  s.armed[name] = after_hits;
  s.hits[name] = 0;
  g_any_armed.store(true, std::memory_order_release);
}

void disarm_killpoints() {
  KillState& s = state();
  std::lock_guard lock(s.mutex);
  s.armed.clear();
  s.hits.clear();
  g_any_armed.store(false, std::memory_order_release);
}

int killpoint_hits(const std::string& name) {
  KillState& s = state();
  std::lock_guard lock(s.mutex);
  const auto it = s.hits.find(name);
  return it == s.hits.end() ? 0 : it->second;
}

void killpoint(const char* name) {
  if (!g_any_armed.load(std::memory_order_acquire)) return;
  KillState& s = state();
  std::unique_lock lock(s.mutex);
  const auto it = s.armed.find(name);
  if (it == s.armed.end()) return;
  ++s.hits[name];
  if (it->second > 0) {
    --it->second;
    return;
  }
  // One shot: a dead process cannot die twice at the same site.
  s.armed.erase(it);
  KillSignal signal{name};
  lock.unlock();
  throw signal;
}

}  // namespace pwu::util
