// Deterministic crash injection for the chaos harness.
//
// Production code marks crash-relevant instants with killpoint("name");
// a test arms a point with arm_killpoint("name", n) and the (n+1)-th pass
// throws KillSignal — simulating a process death at exactly that instant,
// reproducibly. KillSignal deliberately does NOT derive from
// std::exception so generic catch(std::exception&) recovery layers (e.g.
// the protocol dispatcher) cannot swallow a simulated crash: it unwinds to
// the test harness like a real kill would end the process.
//
// Disarmed (the default, and always in production), killpoint() is a
// single relaxed atomic load.

#pragma once

#include <string>

namespace pwu::util {

/// Thrown by an armed kill point. Intentionally not a std::exception.
struct KillSignal {
  std::string point;
};

/// Arms `name`: after `after_hits` passes, the next killpoint(name) throws.
/// Re-arming a name replaces its countdown.
void arm_killpoint(const std::string& name, int after_hits = 0);

/// Disarms every kill point (test teardown).
void disarm_killpoints();

/// Number of times killpoint(name) has fired or decremented since arming.
int killpoint_hits(const std::string& name);

/// Crash-site marker; no-op unless `name` is armed.
void killpoint(const char* name);

}  // namespace pwu::util
