#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pwu::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::cell_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) account(header_);
  for (const auto& row : rows_) account(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace pwu::util
