// Byte accounting of named charges against a process-wide cap.
//
// The tuning service charges each session's resident footprint (forest
// nodes, encoded pool rows, training set) under its session name; the
// manager consults the total to decide when idle sessions must be evicted
// to checkpoint. The budget itself never evicts anything — it is a pure,
// thread-safe ledger with a leaf mutex (no callback ever runs under it),
// so it can be charged from worker threads without lock-order concerns.

#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace pwu::util {

class ResourceBudget {
 public:
  ResourceBudget() = default;  // unlimited
  explicit ResourceBudget(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// 0 = unlimited.
  std::size_t capacity() const;
  void set_capacity(std::size_t bytes);

  /// Replaces `key`'s charge with `bytes` (0 erases it). Returns the new
  /// total. Charging never fails — enforcement is the caller's policy.
  std::size_t charge(const std::string& key, std::size_t bytes);
  void release(const std::string& key) { charge(key, 0); }

  std::size_t used() const;
  std::size_t used(const std::string& key) const;

  /// True when a capacity is set and the total exceeds it.
  bool over_capacity() const;
  /// Bytes above capacity (0 when within budget or unlimited).
  std::size_t excess() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;                    // pwu-lint: guarded-by(mutex_)
  std::size_t total_ = 0;                       // pwu-lint: guarded-by(mutex_)
  std::map<std::string, std::size_t> charges_;  // pwu-lint: guarded-by(mutex_)
};

}  // namespace pwu::util
