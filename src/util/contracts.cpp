#include "util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pwu::util {

ContractViolation::ContractViolation(std::string kind, std::string expression,
                                     std::string file, int line,
                                     std::string message)
    : std::logic_error("pwu contract violation: " + kind + " failed: " +
                       expression + " at " + file + ":" +
                       std::to_string(line) +
                       (message.empty() ? "" : " (" + message + ")")),
      kind_(std::move(kind)),
      expression_(std::move(expression)),
      file_(std::move(file)),
      line_(line),
      message_(std::move(message)) {}

namespace {

std::atomic<ContractHandler> g_handler{nullptr};

}  // namespace

ContractHandler set_contract_handler(ContractHandler handler) {
  return g_handler.exchange(handler);
}

void contract_fail(const char* kind, const char* expression, const char* file,
                   int line, const std::string& message) {
  const ContractViolation violation(kind, expression, file, line, message);
  if (ContractHandler handler = g_handler.load()) {
    handler(violation);  // a throwing handler never returns here
  }
  // The abort path writes straight to stderr: the process is about to die
  // and the leveled logger's formatting machinery is not worth trusting.
  // pwu-lint: allow-next-line(no-cout-logging)
  std::fprintf(stderr,
               "pwu contract violation: %s failed\n"
               "  expression: %s\n"
               "  location:   %s:%d\n"
               "  message:    %s\n",
               kind, expression, file, line,
               message.empty() ? "(none)" : message.c_str());
  std::abort();
}

}  // namespace pwu::util
