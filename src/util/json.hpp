// Minimal JSON value type with parse/serialize, sized for the service
// protocol (src/service/protocol.*): objects, arrays, strings, doubles,
// bools, null. No external dependency; numbers are always doubles (the
// protocol's integers stay exact up to 2^53, far beyond any session size).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pwu::util::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps serialization order deterministic (sorted keys), which
/// makes protocol responses stable for tests and logs.
using Object = std::map<std::string, Value>;

enum class Type { Null, Boolean, Number, String, ArrayT, ObjectT };

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : type_(Type::Boolean), bool_(b) {}
  Value(double d) : type_(Type::Number), number_(d) {}
  Value(int i) : type_(Type::Number), number_(i) {}
  Value(std::size_t u) : type_(Type::Number), number_(static_cast<double>(u)) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(Array a) : type_(Type::ArrayT), array_(std::move(a)) {}
  Value(Object o) : type_(Type::ObjectT), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Boolean; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::ArrayT; }
  bool is_object() const { return type_ == Type::ObjectT; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup: null Value when absent (or not an object).
  const Value& at(const std::string& key) const;
  bool has(const std::string& key) const;

  /// Convenience getters with defaults for protocol parsing.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Compact single-line serialization (doubles via shortest exact form).
  std::string dump() const;

  bool operator==(const Value& other) const = default;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document; throws std::runtime_error (with a byte offset)
/// on malformed input or trailing garbage.
Value parse(const std::string& text);

}  // namespace pwu::util::json
