// Deadline supervision primitives for the overload-resilient service.
//
// Three pieces, deliberately separated so each is testable on its own:
//
//   TickSource   — a monotonic millisecond clock behind a virtual call.
//                  SteadyTickSource reads the OS monotonic clock;
//                  ManualTickSource is a hand-cranked clock for
//                  deterministic tests (the soak harness advances it
//                  explicitly, so "a refit exceeded its wall-clock bound"
//                  is a scripted event, not a scheduler accident).
//   CancelToken  — a cooperative cancellation flag checked at safe points
//                  (between trees in a forest fit). Cancellation is
//                  *requested*, never forced: the cancelled work unwinds
//                  by throwing Cancelled from a checkpoint it chose.
//   Watchdog     — arms a budget against a TickSource and answers
//                  "has the supervised operation overrun?" without ever
//                  blocking. The service polls it on session touches and
//                  requests cancellation when it expires.
//
// src/service code is barred from naming clocks directly (pwu_lint
// no-wallclock), so this header is the only doorway between wall-clock
// time and checkpointable code — and the virtual TickSource keeps even
// that doorway mockable.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace pwu::util {

/// Monotonic millisecond clock behind a virtual call.
class TickSource {
 public:
  virtual ~TickSource() = default;
  virtual std::int64_t now_ms() const = 0;
};

/// Reads the OS monotonic clock.
class SteadyTickSource final : public TickSource {
 public:
  std::int64_t now_ms() const override;
};

/// Hand-cranked clock for deterministic tests.
class ManualTickSource final : public TickSource {
 public:
  std::int64_t now_ms() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void set(std::int64_t ms) { now_.store(ms, std::memory_order_relaxed); }
  void advance(std::int64_t delta_ms) {
    now_.fetch_add(delta_ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_{0};
};

/// Thrown by cancelled work when it reaches a cancellation checkpoint.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("operation cancelled") {}
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

/// Cooperative cancellation flag, shared between the supervisor (who
/// requests) and the worker (who polls at safe points).
class CancelToken {
 public:
  void request() { requested_.store(true, std::memory_order_relaxed); }
  void reset() { requested_.store(false, std::memory_order_relaxed); }
  bool requested() const {
    return requested_.load(std::memory_order_relaxed);
  }
  /// Throws Cancelled when a cancellation has been requested.
  void throw_if_requested() const {
    if (requested()) throw Cancelled();
  }

 private:
  std::atomic<bool> requested_{false};
};

/// Non-blocking overrun detector: arm() records "now" against a budget,
/// expired() answers whether the budget has elapsed. Internally locked so
/// a health probe may poll it while the owner re-arms.
class Watchdog {
 public:
  /// Starts (or restarts) supervision with `budget_ms` on `ticks`, which
  /// must outlive the armed period. A budget of 0 disarms.
  void arm(const TickSource& ticks, std::int64_t budget_ms);
  void disarm();
  bool armed() const;
  /// True when armed and the budget has fully elapsed.
  bool expired() const;
  /// Milliseconds since arm(); 0 when disarmed.
  std::int64_t elapsed_ms() const;

 private:
  mutable std::mutex mutex_;
  const TickSource* ticks_ = nullptr;  // pwu-lint: guarded-by(mutex_)
  std::int64_t armed_at_ms_ = 0;       // pwu-lint: guarded-by(mutex_)
  std::int64_t budget_ms_ = 0;         // pwu-lint: guarded-by(mutex_)
};

}  // namespace pwu::util
