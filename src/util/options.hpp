// Experiment scaling knobs shared by the bench/figure binaries.
//
// The paper's full protocol (pool 7000 / test 3000 / n_max 500 / 10 repeats)
// is expensive on a small CI machine, so every binary reads a common set of
// environment variables with CI-sized defaults:
//
//   PWU_FULL=1       switch every knob to the paper-scale value
//   PWU_REPEATS=k    number of averaged experiment repetitions
//   PWU_NMAX=n       maximum training-set size (Algorithm 1 n_max)
//   PWU_NINIT=n      cold-start size (Algorithm 1 n_init)
//   PWU_POOL=n       candidate-pool size
//   PWU_TEST=n       held-out test-set size
//   PWU_TREES=n      random-forest size
//   PWU_EVAL_EVERY=n evaluate metrics every n-th iteration
//   PWU_SEED=s       master seed
//   PWU_OUT=dir      directory for CSV dumps (default: no dumps)

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pwu::util {

struct BenchOptions {
  bool full = false;
  std::size_t repeats = 2;
  std::size_t n_max = 150;
  std::size_t n_init = 10;
  std::size_t pool_size = 1500;
  std::size_t test_size = 800;
  std::size_t num_trees = 40;
  std::size_t eval_every = 10;
  std::uint64_t seed = 42;
  std::string out_dir;  // empty = no CSV output

  /// Reads the environment (see header comment). PWU_FULL upgrades the
  /// defaults to paper scale before the individual overrides apply.
  static BenchOptions from_env();

  /// One-line human-readable description of the active scale.
  std::string describe() const;
};

/// Returns the integer value of the environment variable, if set and valid.
std::optional<long long> env_int(const char* name);

/// Returns the string value of the environment variable, if set.
std::optional<std::string> env_string(const char* name);

}  // namespace pwu::util
