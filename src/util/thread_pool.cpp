#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace pwu::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::parallel_for after shutdown");
    }
  }
  const std::size_t count = end - begin;
  const unsigned threads = num_threads();
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(threads, count);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Helping join: run queued jobs while waiting so a nested call — a pool
  // worker blocking on its own pool, e.g. a background surrogate refit
  // fanning a forest fit out over the same workers — always makes progress.
  // A plain f.get() here deadlocks once every worker sits in this wait.
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      std::function<void()> job;
      {
        std::lock_guard lock(mutex_);
        if (!queue_.empty()) {
          job = std::move(queue_.front());
          queue_.pop();
        }
      }
      if (job) {
        job();
      } else {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    f.get();  // propagates the first exception
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pwu::util
