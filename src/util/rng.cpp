#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/contracts.hpp"

namespace pwu::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PWU_REQUIRE(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) {
  PWU_REQUIRE(n > 0, "index: drawing from an empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  // Avoid log(0).
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

Rng Rng::fork() { return Rng(next_u64()); }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument(
        "sample_without_replacement: k exceeds population size");
  }
  std::vector<std::size_t> picked;
  picked.reserve(k);
  if (k * 3 < n) {
    // Floyd's algorithm: O(k) expected draws, no O(n) allocation.
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = index(j + 1);
      if (seen.insert(t).second) {
        picked.push_back(t);
      } else {
        seen.insert(j);
        picked.push_back(j);
      }
    }
  } else {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
      picked.push_back(all[i]);
    }
  }
  return picked;
}

std::vector<std::size_t> Rng::bootstrap_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (auto& v : out) v = index(n);
  return out;
}

void Rng::save(std::ostream& os) const {
  // The cached normal is written through its bit pattern so the text
  // round-trip is exact for every value (including subnormals).
  os << "pwu-rng 1 " << state_[0] << ' ' << state_[1] << ' ' << state_[2]
     << ' ' << state_[3] << ' ' << std::bit_cast<std::uint64_t>(cached_normal_)
     << ' ' << (has_cached_normal_ ? 1 : 0) << '\n';
}

void Rng::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::uint64_t words[4] = {};
  std::uint64_t normal_bits = 0;
  int has_normal = 0;
  if (!(is >> magic >> version >> words[0] >> words[1] >> words[2] >>
        words[3] >> normal_bits >> has_normal) ||
      magic != "pwu-rng" || version != 1) {
    throw std::runtime_error("Rng::load: bad state header");
  }
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  cached_normal_ = std::bit_cast<double>(normal_bits);
  has_cached_normal_ = has_normal != 0;
}

bool Rng::operator==(const Rng& other) const {
  return std::equal(std::begin(state_), std::end(state_),
                    std::begin(other.state_)) &&
         has_cached_normal_ == other.has_cached_normal_ &&
         (!has_cached_normal_ || cached_normal_ == other.cached_normal_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: all weights are zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

}  // namespace pwu::util
