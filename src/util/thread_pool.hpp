// Fixed-size worker pool used to parallelize forest training and experiment
// repeats. Work items are type-erased closures; `parallel_for` provides a
// blocking index-range map with static chunking.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pwu::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, at
  /// least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  /// Explicit early shutdown: drains queued work and joins the workers.
  /// Subsequent submit()/parallel_for() calls throw std::runtime_error.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a callable; the returned future observes its result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Applies `body(i)` for i in [begin, end), blocking until all chunks
  /// complete. Exceptions from the body are rethrown (first one wins).
  /// Falls back to inline execution for empty pools or tiny ranges.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;  // pwu-lint: guarded-by(mutex_)
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;  // pwu-lint: guarded-by(mutex_)
};

}  // namespace pwu::util
