// CART regression tree with per-node random feature subspace (the second
// randomness source of Breiman's random forest).

#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "rf/dataset.hpp"
#include "rf/split.hpp"
#include "util/rng.hpp"

namespace pwu::rf {

struct TreeConfig {
  /// 0 = unlimited depth.
  std::size_t max_depth = 0;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Features tried per node; 0 = max(1, num_features / 3), the standard
  /// regression-forest default.
  std::size_t mtry = 0;

  std::size_t resolve_mtry(std::size_t num_features) const;
};

class DecisionTree {
 public:
  struct Node {
    Split split;        // invalid split => leaf
    double value = 0.0; // leaf prediction (mean label)
    std::int32_t left = -1;
    std::int32_t right = -1;
    bool is_leaf() const { return !split.valid(); }
    bool operator==(const Node& other) const = default;
  };

  /// Fits the tree to the samples referenced by `indices` (typically a
  /// bootstrap resample). `indices` is consumed (reordered in place).
  /// `presorted` is the forest-level sorted-column cache; when null the
  /// tree builds its own (the cache only pays for itself when shared
  /// across an ensemble).
  void fit(const Dataset& data, std::vector<std::size_t> indices,
           const TreeConfig& config, util::Rng& rng,
           const SortedColumns* presorted = nullptr);

  /// Mean label of the leaf that `row` falls into.
  double predict(std::span<const double> row) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;
  std::size_t depth() const;

  /// Writes the node table as text (round-trip exact: doubles are emitted
  /// with full precision).
  void save(std::ostream& os) const;
  /// Reads a node table written by save(); throws std::runtime_error on a
  /// malformed stream.
  void load(std::istream& is);

  bool operator==(const DecisionTree& other) const;

  /// Read-only node table (node 0 is the root) — what FlatForest compiles
  /// into its contiguous evaluation layout.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Resident heap footprint of the node table.
  std::size_t memory_bytes() const { return nodes_.capacity() * sizeof(Node); }

 private:
  /// Recursively builds the subtree over instances [lo, hi) of the presorted
  /// workspace; `columns_live` says whether the workspace's feature columns
  /// are partitioned down to this node. Returns the node id.
  std::int32_t build(const Dataset& data, std::size_t lo, std::size_t hi,
                     std::size_t depth, const TreeConfig& config,
                     util::Rng& rng, SplitWorkspace& workspace,
                     std::vector<std::size_t>& feature_scratch,
                     bool columns_live);

  std::size_t depth_of(std::int32_t node) const;

  std::vector<Node> nodes_;
};

}  // namespace pwu::rf
