// In-memory regression dataset with mixed numerical/categorical features.
//
// Features are stored row-major as doubles. Categorical features hold the
// level index (see space::Parameter::numeric_value); the per-feature
// categorical mask and cardinalities tell the trees to use set-membership
// splits for those columns.

#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/contracts.hpp"

namespace pwu::rf {

class Dataset {
 public:
  /// `categorical` may be empty (all numerical); `cardinalities` is required
  /// for every categorical feature and ignored for numerical ones.
  explicit Dataset(std::size_t num_features,
                   std::vector<bool> categorical = {},
                   std::vector<std::size_t> cardinalities = {});

  /// Appends one labeled sample. `row.size()` must equal num_features().
  void add(std::span<const double> row, double label);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_features() const { return num_features_; }
  bool empty() const { return labels_.empty(); }

  double x(std::size_t row, std::size_t col) const {
    PWU_REQUIRE(row < size() && col < num_features_,
                "Dataset::x: row=" << row << " col=" << col << " size="
                                   << size() << " width=" << num_features_);
    return features_[row * num_features_ + col];
  }
  double y(std::size_t row) const {
    PWU_REQUIRE(row < size(), "Dataset::y: row=" << row << " size=" << size());
    return labels_[row];
  }

  std::span<const double> row(std::size_t r) const {
    PWU_REQUIRE(r < size(), "Dataset::row: row=" << r << " size=" << size());
    return std::span<const double>(features_.data() + r * num_features_,
                                   num_features_);
  }
  std::span<const double> labels() const { return labels_; }

  bool is_categorical(std::size_t col) const {
    return col < categorical_.size() && categorical_[col];
  }

  /// Number of levels of a categorical feature (0 for numerical features).
  std::size_t cardinality(std::size_t col) const {
    return col < cardinalities_.size() ? cardinalities_[col] : 0;
  }

  const std::vector<bool>& categorical_mask() const { return categorical_; }
  const std::vector<std::size_t>& cardinalities() const {
    return cardinalities_;
  }

  /// Copy with the same schema but no rows.
  Dataset empty_like() const;

  /// Resident heap footprint of the feature and label buffers.
  std::size_t memory_bytes() const {
    return (features_.capacity() + labels_.capacity()) * sizeof(double) +
           cardinalities_.capacity() * sizeof(std::size_t);
  }

 private:
  std::size_t num_features_;
  std::vector<bool> categorical_;
  std::vector<std::size_t> cardinalities_;
  std::vector<double> features_;  // row-major
  std::vector<double> labels_;
};

}  // namespace pwu::rf
