#include "rf/dataset.hpp"

#include <cmath>

namespace pwu::rf {

Dataset::Dataset(std::size_t num_features, std::vector<bool> categorical,
                 std::vector<std::size_t> cardinalities)
    : num_features_(num_features),
      categorical_(std::move(categorical)),
      cardinalities_(std::move(cardinalities)) {
  if (!categorical_.empty() && categorical_.size() != num_features_) {
    throw std::invalid_argument("Dataset: categorical mask size mismatch");
  }
  if (!cardinalities_.empty() && cardinalities_.size() != num_features_) {
    throw std::invalid_argument("Dataset: cardinalities size mismatch");
  }
  for (std::size_t i = 0; i < categorical_.size(); ++i) {
    if (categorical_[i]) {
      if (cardinalities_.empty() || cardinalities_[i] == 0) {
        throw std::invalid_argument(
            "Dataset: categorical feature requires a cardinality");
      }
      if (cardinalities_[i] > 64) {
        throw std::invalid_argument(
            "Dataset: categorical cardinality above 64 is unsupported "
            "(split masks are 64-bit)");
      }
    }
  }
}

void Dataset::add(std::span<const double> row, double label) {
  if (row.size() != num_features_) {
    throw std::invalid_argument("Dataset::add: row width mismatch");
  }
  if (!std::isfinite(label)) {
    throw std::invalid_argument("Dataset::add: non-finite label");
  }
  for (std::size_t f = 0; f < row.size(); ++f) {
    const double v = row[f];
    if (!std::isfinite(v)) {
      throw std::invalid_argument("Dataset::add: non-finite feature");
    }
    if (is_categorical(f)) {
      // Split finding rounds a categorical value to its level index and
      // shifts a 64-bit mask by it; an out-of-range level would index
      // out of the per-level scan buffers (or shift by >= 64) downstream,
      // so reject it at the door.
      const double level = std::round(v);
      if (level != v || level < 0.0 ||
          level >= static_cast<double>(cardinality(f))) {
        throw std::invalid_argument(
            "Dataset::add: categorical feature value is not a level index "
            "in [0, cardinality)");
      }
    }
  }
  features_.insert(features_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

Dataset Dataset::empty_like() const {
  return Dataset(num_features_, categorical_, cardinalities_);
}

}  // namespace pwu::rf
