#include "rf/feature_matrix.hpp"

#include <algorithm>

namespace pwu::rf {

FeatureMatrix FeatureMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  FeatureMatrix m;
  if (rows.empty()) return m;
  m.cols_ = rows.front().size();
  m.data_.reserve(rows.size() * m.cols_);
  for (const auto& row : rows) {
    m.add_row(row);
  }
  return m;
}

void FeatureMatrix::add_row(std::span<const double> values) {
  if (cols_ == 0 && data_.empty()) {
    cols_ = values.size();
  }
  if (values.size() != cols_) {
    throw std::invalid_argument("FeatureMatrix::add_row: width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
}

std::span<double> FeatureMatrix::append_row() {
  if (cols_ == 0) {
    throw std::logic_error("FeatureMatrix::append_row: width not set");
  }
  data_.resize(data_.size() + cols_);
  return std::span<double>(data_.data() + data_.size() - cols_, cols_);
}

void FeatureMatrix::remove_row_swap(std::size_t r) {
  const std::size_t rows = num_rows();
  if (r >= rows) {
    throw std::out_of_range("FeatureMatrix::remove_row_swap: bad row");
  }
  if (r + 1 != rows) {
    std::copy_n(data_.data() + (rows - 1) * cols_, cols_,
                data_.data() + r * cols_);
  }
  data_.resize(data_.size() - cols_);
}

}  // namespace pwu::rf
