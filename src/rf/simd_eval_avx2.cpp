// AVX2 tier of the tree-evaluation kernels — the only TU compiled with
// -mavx2 (set per-source in src/CMakeLists.txt). Nothing here runs unless
// simd_eval.cpp's cpuid dispatch selected Level::Avx2, so the binary stays
// safe on plain x86-64; no vector constant may live at namespace scope
// (its static initializer would execute AVX instructions unconditionally).
//
// Shape (flat16): 32 rows advance per tree level as eight independent
// 4-lane groups. Each level costs two *dependent* gathers per group (node
// metadata, then the row value the gathered feature index selects), so a
// single chain is pure gather latency; eight chains keep enough line fills
// in flight to cover it. Per level and group:
//
//   meta  <- 64-bit gather of each node's {feature, left} word
//   thr   <- gather of each node's payload double
//   vals  <- masked gather of row[feature] (leaf lanes suppressed — their
//            lane of the mask is zero, so no memory access happens)
//   le    <- _CMP_LE_OQ vals vs thr (false on NaN, like scalar `v <= t`)
//   cur   <- blend(left + !le, cur) — leaf lanes hold position
//
// Shape (quant8): the rank precompute (see QuantTreeKernel) has already
// collapsed every threshold compare into `code >= rank`, so the walk is
// pure 32-bit integer work: 32 rows as four 8-lane epi32 groups, three
// int gathers per level and group (node lo word, node left word, and the
// rank from a block-resident L1-sized table) — no double gathers at all.
//
// The blend mask must be the full-lane is-leaf compare, never the feature
// word itself: _mm_blendv_epi8 selects per *byte*, and a positive feature
// index with a high bit set in some byte (e.g. 0x80) would otherwise
// splice indices from both operands.

#include "rf/simd_eval.hpp"

#ifdef PWU_SIMD_HAS_AVX2

#include <immintrin.h>

#include <cstdint>

#include "rf/flat_forest.hpp"
#include "rf/quantized_layout.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// gcc's avx2intrin.h wraps the unmasked-gather builtins so their merge
// operand looks maybe-uninitialized once kernel state lives in small
// arrays; the gathers write every lane unconditionally, so the operand is
// never observed. Silence the header-attributed false positive TU-wide.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pwu::rf::simd::detail {

namespace {

/// Low dwords of four 64-bit lanes, compacted into a __m128i.
inline __m128i compact_even(__m256i v) {
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, perm));
}

/// High dwords of four 64-bit lanes.
inline __m128i compact_odd(__m256i v) {
  const __m256i perm = _mm256_setr_epi32(1, 3, 5, 7, 0, 2, 4, 6);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, perm));
}

/// Scalar walks for the < 8 leftover rows of a block (row-independent, so
/// the grouping change cannot alter any output bit).
inline double flat_tail_one(const FlatNode* nodes, const double* row) {
  std::uint32_t i = 0;
  for (;;) {
    const FlatNode node = nodes[i];
    if (node.feature < 0) return node.payload;
    i = static_cast<std::uint32_t>(node.left) +
        (row[node.feature] <= node.payload ? 0u : 1u);
  }
}

inline double quant_tail_one(const QuantNode* nodes, const std::int32_t* rrow,
                             const double* leaf_values) {
  std::uint32_t i = 0;
  for (;;) {
    const QuantNode node = nodes[i];
    if (node.is_leaf()) return leaf_values[node.left];
    i = static_cast<std::uint32_t>(node.left) +
        (static_cast<std::int32_t>(node.code) >= rrow[node.feature] ? 0u : 1u);
  }
}

}  // namespace

void flat_tree_avx2(const FlatNode* nodes, const double* rows,
                    std::size_t stride, std::size_t n, double* out) {
  const __m128i one = _mm_set1_epi32(1);
  const __m128i zero = _mm_setzero_si128();
  const __m128i fmask = _mm_set1_epi32(FlatNode::kFeatureMask);
  const __m256i neg1_64 = _mm256_set1_epi64x(-1);
  const int s = static_cast<int>(stride);
  const __m128i row_off = _mm_setr_epi32(0, s, 2 * s, 3 * s);
  const auto* meta_base = reinterpret_cast<const long long*>(nodes) + 1;
  const auto* payload_base = reinterpret_cast<const double*>(nodes);

  // One tree level for one 4-lane group: gathers node metadata, compares,
  // steps the non-leaf lanes. Returns the updated indices; `feat` was
  // already gathered by the caller (it also drives the done check).
  const auto step = [&](__m128i cur, __m128i feat, __m128i left, __m128i idx,
                        const double* base) {
    const __m256d thr = _mm256_i32gather_pd(payload_base, idx, 8);
    const __m256i active =
        _mm256_cmpgt_epi64(_mm256_cvtepi32_epi64(feat), neg1_64);
    const __m128i cols = _mm_and_si128(feat, fmask);
    const __m128i offs = _mm_add_epi32(row_off, cols);
    const __m256d vals = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base, offs, _mm256_castsi256_pd(active), 8);
    const __m256d le = _mm256_cmp_pd(vals, thr, _CMP_LE_OQ);
    const __m128i le32 = compact_even(_mm256_castpd_si256(le));
    const __m128i next = _mm_add_epi32(left, _mm_andnot_si128(le32, one));
    const __m128i is_leaf = _mm_cmpgt_epi32(zero, feat);
    return _mm_blendv_epi8(next, cur, is_leaf);
  };

  constexpr int kGroups = 8;
  constexpr std::size_t kBlock = 4 * kGroups;
  std::size_t r = 0;
  for (; r + kBlock <= n; r += kBlock) {
    __m128i cur[kGroups];
    const double* base[kGroups];
    for (int g = 0; g < kGroups; ++g) {
      cur[g] = zero;
      base[g] = rows + (r + 4 * static_cast<std::size_t>(g)) * stride;
    }
    for (;;) {
      // Issue every group's metadata gather before consuming any of them,
      // so the four line fills overlap instead of serializing.
      __m128i idx[kGroups];
      __m256i meta[kGroups];
      for (int g = 0; g < kGroups; ++g) {
        idx[g] = _mm_slli_epi32(cur[g], 1);
        meta[g] = _mm256_i32gather_epi64(meta_base, idx[g], 8);
      }
      __m128i feat[kGroups];
      int leaves = 0xF;
      for (int g = 0; g < kGroups; ++g) {
        feat[g] = compact_even(meta[g]);
        leaves &= _mm_movemask_ps(_mm_castsi128_ps(feat[g]));
      }
      if (leaves == 0xF) break;  // every lane of every group on a leaf
      for (int g = 0; g < kGroups; ++g) {
        cur[g] = step(cur[g], feat[g], compact_odd(meta[g]), idx[g], base[g]);
      }
    }
    for (int g = 0; g < kGroups; ++g) {
      _mm256_storeu_pd(
          out + r + 4 * static_cast<std::size_t>(g),
          _mm256_i32gather_pd(payload_base, _mm_slli_epi32(cur[g], 1), 8));
    }
  }
  for (; r < n; ++r) out[r] = flat_tail_one(nodes, rows + r * stride);
}

void quant_tree_avx2(const QuantNode* nodes, const std::int32_t* ranks,
                     std::size_t rank_stride, const double* leaf_values,
                     std::size_t n, double* out) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i all_ones = _mm256_set1_epi32(-1);
  const __m256i leaf_sentinel =
      _mm256_set1_epi32(static_cast<int>(QuantNode::kLeafSentinel));
  const __m256i low16 = _mm256_set1_epi32(0xFFFF);
  const int rs = static_cast<int>(rank_stride);
  const __m256i row_off =
      _mm256_setr_epi32(0, rs, 2 * rs, 3 * rs, 4 * rs, 5 * rs, 6 * rs, 7 * rs);
  const auto* node_base = reinterpret_cast<const int*>(nodes);

  // One tree level for one 8-lane group: `lo` ({feature | code << 16}) and
  // `left` were already gathered by the caller. The rank gather is masked
  // so leaf lanes (feat = 0xFFFF, an out-of-table offset) touch no memory.
  const auto step = [&](__m256i cur, __m256i lo, __m256i left,
                        __m256i is_leaf, const std::int32_t* rbase) {
    const __m256i feat = _mm256_and_si256(lo, low16);
    const __m256i code = _mm256_srli_epi32(lo, 16);
    const __m256i not_leaf = _mm256_xor_si256(is_leaf, all_ones);
    const __m256i offs = _mm256_add_epi32(row_off, feat);
    const __m256i rank =
        _mm256_mask_i32gather_epi32(zero, rbase, offs, not_leaf, 4);
    // Right iff rank > code (i.e. !(code >= rank)); both fit int32.
    const __m256i go_right = _mm256_cmpgt_epi32(rank, code);
    const __m256i next =
        _mm256_add_epi32(left, _mm256_and_si256(go_right, one));
    return _mm256_blendv_epi8(next, cur, is_leaf);
  };

  constexpr int kGroups = 8;
  constexpr std::size_t kBlock = 8 * kGroups;
  std::size_t r = 0;
  for (; r + kBlock <= n; r += kBlock) {
    __m256i cur[kGroups];
    const std::int32_t* rbase[kGroups];
    for (int g = 0; g < kGroups; ++g) {
      cur[g] = zero;
      rbase[g] = ranks + (r + 8 * static_cast<std::size_t>(g)) * rank_stride;
    }
    for (;;) {
      // Issue every group's node gathers before consuming any of them.
      __m256i lo[kGroups];
      __m256i left[kGroups];
      for (int g = 0; g < kGroups; ++g) {
        const __m256i idx = _mm256_slli_epi32(cur[g], 1);
        lo[g] = _mm256_i32gather_epi32(node_base, idx, 4);
        left[g] = _mm256_i32gather_epi32(node_base + 1, idx, 4);
      }
      __m256i is_leaf[kGroups];
      int leaves = 0xFF;
      for (int g = 0; g < kGroups; ++g) {
        is_leaf[g] = _mm256_cmpeq_epi32(_mm256_and_si256(lo[g], low16),
                                        leaf_sentinel);
        leaves &= _mm256_movemask_ps(_mm256_castsi256_ps(is_leaf[g]));
      }
      if (leaves == 0xFF) {
        // Every lane on a leaf: `left` holds leaf-table indices.
        for (int g = 0; g < kGroups; ++g) {
          double* dst = out + r + 8 * static_cast<std::size_t>(g);
          _mm256_storeu_pd(
              dst, _mm256_i32gather_pd(leaf_values,
                                       _mm256_castsi256_si128(left[g]), 8));
          _mm256_storeu_pd(
              dst + 4,
              _mm256_i32gather_pd(leaf_values,
                                  _mm256_extracti128_si256(left[g], 1), 8));
        }
        break;
      }
      for (int g = 0; g < kGroups; ++g) {
        cur[g] = step(cur[g], lo[g], left[g], is_leaf[g], rbase[g]);
      }
    }
  }
  for (; r < n; ++r) {
    out[r] = quant_tail_one(nodes, ranks + r * rank_stride, leaf_values);
  }
}

}  // namespace pwu::rf::simd::detail

#else  // PWU_SIMD_HAS_AVX2

// The AVX2 tier is compiled out (PWU_SIMD=off/sse2/scalar): keep the TU
// non-empty without emitting symbols the dispatcher cannot reference.
namespace pwu::rf::simd::detail {}

#endif  // PWU_SIMD_HAS_AVX2
