#include "rf/quantized_layout.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <stdexcept>

#include "rf/simd_eval.hpp"
#include "util/contracts.hpp"

namespace pwu::rf {

namespace {

/// Full scalar walk over the compacted layout, including categorical
/// set-membership splits — the path trees with categorical splits always
/// take (SIMD kernels only see numerical-only trees). Routing replicates
/// the FlatForest walk exactly: the threshold table holds the original
/// split doubles, so `v <= thresholds[code]` sees bit-identical operands.
double traverse_quant(const QuantNode* nodes, const double* thresholds,
                      const std::uint64_t* masks, const double* leaf_values,
                      const double* row) {
  std::uint32_t i = 0;
  for (;;) {
    const QuantNode node = nodes[i];
    if (node.is_leaf()) return leaf_values[node.left];
    const double v = row[node.feature & QuantNode::kFeatureMask];
    bool left;
    if ((node.feature & QuantNode::kCategoricalBit) != 0) {
      const auto level = static_cast<std::uint64_t>(std::llround(v));
      left = level < 64 && ((masks[node.code] >> level) & 1ULL);
    } else {
      left = v <= thresholds[node.code];
    }
    i = static_cast<std::uint32_t>(node.left) + (left ? 0u : 1u);
  }
}

}  // namespace

bool QuantizedForest::build(const FlatForest& forest) {
  clear();
  const std::span<const FlatNode> src = forest.nodes();
  const std::span<const std::uint32_t> offsets = forest.tree_offsets();
  if (offsets.size() < 2) return false;  // nothing to compact

  // Pass 1: per-feature threshold codebooks (sorted distinct doubles) and
  // the categorical-mask table.
  std::vector<std::vector<double>> per_feature;
  std::map<std::uint64_t, std::uint16_t> mask_codes;
  for (const FlatNode& node : src) {
    if (node.feature < 0) continue;
    const std::int32_t feat = node.feature & FlatNode::kFeatureMask;
    if (feat >= QuantNode::kFeatureMask) return false;  // u16 overflow
    if ((node.feature & FlatNode::kCategoricalFlag) != 0) {
      mask_codes.emplace(std::bit_cast<std::uint64_t>(node.payload),
                         static_cast<std::uint16_t>(0));
      if (mask_codes.size() > 65536) return false;
      continue;
    }
    if (std::isnan(node.payload)) return false;  // would break sort/unique
    if (per_feature.size() <= static_cast<std::size_t>(feat)) {
      per_feature.resize(static_cast<std::size_t>(feat) + 1);
    }
    per_feature[static_cast<std::size_t>(feat)].push_back(node.payload);
  }
  std::vector<std::size_t> base(per_feature.size(), 0);
  for (std::size_t f = 0; f < per_feature.size(); ++f) {
    auto& codebook = per_feature[f];
    std::sort(codebook.begin(), codebook.end());
    codebook.erase(std::unique(codebook.begin(), codebook.end()),
                   codebook.end());
    base[f] = thresholds_.size();
    thresholds_.insert(thresholds_.end(), codebook.begin(), codebook.end());
  }
  if (thresholds_.size() > 65536) {
    clear();
    return false;
  }
  feature_base_.reserve(per_feature.size() + 1);
  for (const std::size_t b : base) {
    feature_base_.push_back(static_cast<std::uint32_t>(b));
  }
  feature_base_.push_back(static_cast<std::uint32_t>(thresholds_.size()));
  cat_masks_.reserve(mask_codes.size());
  for (auto& [mask, code] : mask_codes) {
    code = static_cast<std::uint16_t>(cat_masks_.size());
    cat_masks_.push_back(mask);
  }

  // Pass 2: rewrite every node. Child indices are tree-local in both
  // layouts, so they carry over unchanged.
  nodes_.reserve(src.size());
  tree_offsets_.reserve(offsets.size());
  const std::size_t num = offsets.size() - 1;
  tree_categorical_.assign(num, 0);
  for (std::size_t t = 0; t < num; ++t) {
    tree_offsets_.push_back(static_cast<std::uint32_t>(nodes_.size()));
    for (std::uint32_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      const FlatNode& node = src[i];
      QuantNode q;
      if (node.feature < 0) {
        q.left = static_cast<std::int32_t>(leaf_values_.size());
        leaf_values_.push_back(node.payload);
      } else if ((node.feature & FlatNode::kCategoricalFlag) != 0) {
        tree_categorical_[t] = 1;
        const auto feat =
            static_cast<std::uint16_t>(node.feature & FlatNode::kFeatureMask);
        q.feature =
            static_cast<std::uint16_t>(feat | QuantNode::kCategoricalBit);
        q.code = mask_codes.at(std::bit_cast<std::uint64_t>(node.payload));
        q.left = node.left;
      } else {
        const auto feat =
            static_cast<std::size_t>(node.feature & FlatNode::kFeatureMask);
        const auto& codebook = per_feature[feat];
        const auto it = std::lower_bound(codebook.begin(), codebook.end(),
                                         node.payload);
        PWU_ASSERT(it != codebook.end() && *it == node.payload,
                   "QuantizedForest::build: threshold missing from codebook");
        q.feature = static_cast<std::uint16_t>(feat);
        q.code = static_cast<std::uint16_t>(
            base[feat] +
            static_cast<std::size_t>(it - codebook.begin()));
        q.left = node.left;
      }
      nodes_.push_back(q);
    }
  }
  tree_offsets_.push_back(static_cast<std::uint32_t>(nodes_.size()));
  PWU_ENSURE(nodes_.size() == src.size(),
             "QuantizedForest::build: node count mismatch " << nodes_.size()
                                                            << " vs "
                                                            << src.size());
  return true;
}

void QuantizedForest::clear() {
  nodes_.clear();
  tree_offsets_.clear();
  thresholds_.clear();
  feature_base_.clear();
  cat_masks_.clear();
  leaf_values_.clear();
  tree_categorical_.clear();
}

void QuantizedForest::compute_ranks(const double* base, std::size_t stride,
                                    std::size_t nb,
                                    std::vector<std::int32_t>& ranks) const {
  const std::size_t nf = feature_base_.size() - 1;
  ranks.resize(nb * nf);
  const double* tab = thresholds_.data();
  // Feature-major so each codebook stays cache-hot across the whole block.
  // The search counts codebook entries < v with the power-of-two bit-set
  // form of lower_bound: fixed trip count per feature, conditions folding
  // to cmov (no mispredicts), which lets four rows' searches run
  // interleaved — four independent load chains instead of one serial one.
  // The result is the first codebook entry >= v: every smaller code fails
  // `v <= threshold`, every code from the result on passes — the exact
  // ordered-compare semantics. NaN compares false against everything, so
  // the search leaves cur at 0; pick the past-the-end rank explicitly so
  // NaN always routes right, like every other tier.
  for (std::size_t f = 0; f < nf; ++f) {
    const double* cb = tab + feature_base_[f];
    const std::uint32_t size = feature_base_[f + 1] - feature_base_[f];
    const auto fb = static_cast<std::int32_t>(feature_base_[f]);
    std::int32_t* dst = ranks.data() + f;
    const std::uint32_t top = size == 0 ? 0 : std::bit_floor(size);
    const auto search_step = [&](std::uint32_t cur, std::uint32_t step,
                                 double v) {
      const std::uint32_t cand = cur + step;
      const bool in = cand <= size;
      const double probe = cb[in ? cand - 1 : 0];
      return (in & (probe < v)) ? cand : cur;
    };
    const auto emit = [&](std::size_t r, double v, std::uint32_t cur) {
      dst[r * nf] = std::isnan(v) ? fb + static_cast<std::int32_t>(size)
                                  : fb + static_cast<std::int32_t>(cur);
    };
    std::size_t r = 0;
    for (; r + 4 <= nb; r += 4) {
      double v[4];
      std::uint32_t cur[4] = {0, 0, 0, 0};
      for (std::size_t j = 0; j < 4; ++j) v[j] = base[(r + j) * stride + f];
      for (std::uint32_t step = top; step != 0; step >>= 1) {
        for (std::size_t j = 0; j < 4; ++j) {
          cur[j] = search_step(cur[j], step, v[j]);
        }
      }
      for (std::size_t j = 0; j < 4; ++j) emit(r + j, v[j], cur[j]);
    }
    for (; r < nb; ++r) {
      const double v = base[r * stride + f];
      std::uint32_t cur = 0;
      for (std::uint32_t step = top; step != 0; step >>= 1) {
        cur = search_step(cur, step, v);
      }
      emit(r, v, cur);
    }
  }
}

void QuantizedForest::stats_block(const FeatureMatrix& rows, std::size_t begin,
                                  std::size_t end,
                                  std::span<PredictionStats> out,
                                  std::vector<double>& scratch,
                                  std::vector<std::int32_t>& rank_scratch) const {
  const std::size_t nb = end - begin;
  const std::size_t num = num_trees();
  PWU_REQUIRE(begin < end && end <= rows.num_rows() &&
                  nb <= FlatForest::kRowBlock,
              "QuantizedForest::stats_block: [" << begin << ", " << end
                                                << ") of " << rows.num_rows());
  scratch.resize(num * nb);
  const double* base = rows.row(begin).data();
  const std::size_t stride = rows.num_cols();
  const simd::QuantTreeKernel kernel =
      simd::quant_tree_kernel(simd::active_level());
  // One rank precompute per block, amortized across every numerical tree:
  // O(rows x features x log codebook) binary searches buy O(trees x depth)
  // integer-only walk steps.
  const std::size_t nf = feature_base_.empty() ? 0 : feature_base_.size() - 1;
  const bool any_numerical =
      std::find(tree_categorical_.begin(), tree_categorical_.end(),
                static_cast<std::uint8_t>(0)) != tree_categorical_.end();
  if (any_numerical && nf > 0) compute_ranks(base, stride, nb, rank_scratch);
  for (std::size_t t = 0; t < num; ++t) {
    const QuantNode* tree = nodes_.data() + tree_offsets_[t];
    double* dst = scratch.data() + t * nb;
    if (tree_categorical_[t] != 0) {
      for (std::size_t r = 0; r < nb; ++r) {
        dst[r] = traverse_quant(tree, thresholds_.data(), cat_masks_.data(),
                                leaf_values_.data(), base + r * stride);
      }
    } else {
      kernel(tree, rank_scratch.data(), nf, leaf_values_.data(), nb, dst);
    }
  }
  // Identical per-row accumulation (two-pass deviation form, tree order) to
  // FlatForest::stats_block — the layouts agree bit-for-bit because every
  // scratch double already does.
  const auto b = static_cast<double>(num);
  for (std::size_t r = 0; r < nb; ++r) {
    double sum = 0.0;
    for (std::size_t t = 0; t < num; ++t) sum += scratch[t * nb + r];
    PredictionStats stats;
    stats.mean = sum / b;
    double sq_dev = 0.0;
    for (std::size_t t = 0; t < num; ++t) {
      const double d = scratch[t * nb + r] - stats.mean;
      sq_dev += d * d;
    }
    stats.variance = sq_dev / b;
    stats.stddev = std::sqrt(stats.variance);
    out[begin + r] = stats;
  }
}

void QuantizedForest::predict_stats(const FeatureMatrix& rows,
                                    std::span<PredictionStats> out,
                                    util::ThreadPool* pool) const {
  const std::size_t n = rows.num_rows();
  if (out.size() != n) {
    throw std::invalid_argument(
        "QuantizedForest::predict_stats: size mismatch");
  }
  if (empty()) {
    throw std::logic_error("QuantizedForest::predict_stats: empty forest");
  }
  if (n == 0) return;
  const std::size_t blocks =
      (n + FlatForest::kRowBlock - 1) / FlatForest::kRowBlock;
  auto run_block = [&](std::size_t block, std::vector<double>& scratch,
                       std::vector<std::int32_t>& ranks) {
    const std::size_t begin = block * FlatForest::kRowBlock;
    const std::size_t end = std::min(begin + FlatForest::kRowBlock, n);
    stats_block(rows, begin, end, out, scratch, ranks);
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 256) {
    pool->parallel_for(0, blocks, [&](std::size_t block) {
      thread_local std::vector<double> scratch;
      thread_local std::vector<std::int32_t> ranks;
      run_block(block, scratch, ranks);
    });
  } else {
    std::vector<double> scratch;
    std::vector<std::int32_t> ranks;
    for (std::size_t block = 0; block < blocks; ++block) {
      run_block(block, scratch, ranks);
    }
  }
}

}  // namespace pwu::rf
