#include "rf/decision_tree.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pwu::rf {

std::size_t TreeConfig::resolve_mtry(std::size_t num_features) const {
  if (mtry > 0) return std::min(mtry, num_features);
  return std::max<std::size_t>(1, num_features / 3);
}

void DecisionTree::fit(const Dataset& data, std::vector<std::size_t> indices,
                       const TreeConfig& config, util::Rng& rng,
                       const SortedColumns* presorted) {
  if (indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: empty sample set");
  }
  nodes_.clear();
  nodes_.reserve(2 * indices.size());
  SortedColumns local_sorted;
  if (presorted == nullptr) {
    local_sorted.build(data);
    presorted = &local_sorted;
  }
  SplitWorkspace workspace;
  workspace.init(data, *presorted, indices);
  std::vector<std::size_t> feature_scratch(data.num_features());
  std::iota(feature_scratch.begin(), feature_scratch.end(), std::size_t{0});
  const bool columns_live = indices.size() >= SplitWorkspace::kColumnCutoff;
  build(data, 0, indices.size(), 0, config, rng, workspace, feature_scratch,
        columns_live);
}

std::int32_t DecisionTree::build(const Dataset& data, std::size_t lo,
                                 std::size_t hi, std::size_t depth,
                                 const TreeConfig& config,
                                 util::Rng& rng PWU_RNG_STREAM(tree_fit),
                                 SplitWorkspace& workspace,
                                 std::vector<std::size_t>& feature_scratch,
                                 bool columns_live) {
  const std::size_t n = hi - lo;
  PWU_ASSERT(n > 0, "build: empty node range [" << lo << ", " << hi << ")");

  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    sum += workspace.inst_label[workspace.node_insts[i]];
  }
  const double node_mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value = node_mean;

  const bool depth_capped = config.max_depth > 0 && depth >= config.max_depth;
  if (n < config.min_samples_split || n < 2 * config.min_samples_leaf ||
      depth_capped) {
    return node_id;
  }

  // Constant labels: nothing to gain.
  const double first_label =
      workspace.inst_label[workspace.node_insts[lo]];
  bool constant = true;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    if (workspace.inst_label[workspace.node_insts[i]] != first_label) {
      constant = false;
      break;
    }
  }
  if (constant) return node_id;

  const double parent_score = sum * sum / static_cast<double>(n);
  const std::size_t mtry = config.resolve_mtry(data.num_features());

  // Partial Fisher-Yates: the first `mtry` entries of feature_scratch become
  // the sampled feature subset.
  for (std::size_t i = 0; i < mtry; ++i) {
    const std::size_t j = i + rng.index(feature_scratch.size() - i);
    std::swap(feature_scratch[i], feature_scratch[j]);
  }

  Split best;
  for (std::size_t f = 0; f < mtry; ++f) {
    Split candidate = best_split_presorted(data, workspace, lo, hi,
                                           columns_live, feature_scratch[f],
                                           sum, parent_score,
                                           config.min_samples_leaf);
    if (candidate.valid() && candidate.gain > best.gain) best = candidate;
  }
  if (!best.valid() || best.gain <= 1e-12 * std::max(1.0, parent_score)) {
    return node_id;
  }

  // Stable partition of the instance range by the chosen split; the columns
  // are carried along only while some child is big enough to read them.
  const auto part =
      partition_presorted(data, workspace, lo, hi, best, columns_live);
  const std::size_t mid = part.mid;
  if (mid == lo || mid == hi) {
    // Shouldn't happen given leaf constraints, but guard against pathological
    // floating-point edge cases by keeping the node a leaf.
    return node_id;
  }

  nodes_[static_cast<std::size_t>(node_id)].split = best;
  const std::int32_t left = build(data, lo, mid, depth + 1, config, rng,
                                  workspace, feature_scratch,
                                  part.columns_partitioned);
  const std::int32_t right = build(data, mid, hi, depth + 1, config, rng,
                                   workspace, feature_scratch,
                                   part.columns_partitioned);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict before fit");
  }
  std::size_t node = 0;
  for (;;) {
    const Node& current = nodes_[node];
    if (current.is_leaf()) return current.value;
    const double value =
        row[static_cast<std::size_t>(current.split.feature)];
    node = static_cast<std::size_t>(current.split.goes_left(value)
                                        ? current.left
                                        : current.right);
  }
}

std::size_t DecisionTree::num_leaves() const {
  std::size_t leaves = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf()) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::depth_of(std::int32_t node) const {
  const Node& current = nodes_[static_cast<std::size_t>(node)];
  if (current.is_leaf()) return 0;
  return 1 + std::max(depth_of(current.left), depth_of(current.right));
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  return depth_of(0);
}

void DecisionTree::save(std::ostream& os) const {
  const auto precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "tree " << nodes_.size() << '\n';
  for (const Node& node : nodes_) {
    os << node.split.feature << ' ' << (node.split.categorical ? 1 : 0)
       << ' ' << node.split.threshold << ' ' << node.split.left_mask << ' '
       << node.split.gain << ' ' << node.value << ' ' << node.left << ' '
       << node.right << '\n';
  }
  os.precision(precision);
}

void DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") {
    throw std::runtime_error("DecisionTree::load: bad header");
  }
  std::vector<Node> nodes(count);
  for (Node& node : nodes) {
    int categorical = 0;
    if (!(is >> node.split.feature >> categorical >> node.split.threshold >>
          node.split.left_mask >> node.split.gain >> node.value >>
          node.left >> node.right)) {
      throw std::runtime_error("DecisionTree::load: truncated node table");
    }
    node.split.categorical = categorical != 0;
  }
  // Structural validation: child indices in range, no self loops.
  for (const Node& node : nodes) {
    if (!node.is_leaf()) {
      if (node.left < 0 || node.right < 0 ||
          static_cast<std::size_t>(node.left) >= nodes.size() ||
          static_cast<std::size_t>(node.right) >= nodes.size()) {
        throw std::runtime_error("DecisionTree::load: invalid child index");
      }
    }
  }
  nodes_ = std::move(nodes);
}

bool DecisionTree::operator==(const DecisionTree& other) const {
  return nodes_ == other.nodes_;
}

}  // namespace pwu::rf
