// Optional 8-byte compacted node layout for fitted FlatForests.
//
// A post-build() compaction pass rewrites each 16-byte FlatNode into a
// QuantNode half its size, so roughly twice the tree working set fits in
// L1/L2 during blocked batch evaluation:
//
//   - split thresholds are deduplicated into per-feature codebooks (laid
//     out back-to-back in one flat `thresholds_` table) and nodes store a
//     16-bit code instead of the 8-byte double;
//   - categorical left-level masks move to a side table, referenced by the
//     same 16-bit code field;
//   - leaf payloads move to `leaf_values_`, indexed by the leaf's child
//     field.
//
// Exactness: codes index the *original* threshold doubles (a rank coding,
// stricter than midpoint snapping), so every `value <= threshold` compare
// sees bit-identical operands and the quantized walk routes every row to
// the same leaf as the full-width walk — predictions agree bit-for-bit,
// which tests/test_simd_eval.cpp asserts across all registry workloads.
//
// The rank coding also makes the batch walk integer-only: because each
// feature's codebook is sorted, `value <= thresholds[code]` is exactly
// `code >= rank`, where rank is the index of the first codebook entry
// >= value (one past the codebook for NaN, which must route right).
// stats_block computes that rank once per (row, feature) per block and
// every numerical tree then walks on 32-bit integer compares — no double
// loads at all — which is what the quant SIMD kernels exploit.
//
// Capacity: codes and feature indices are 16-bit. build() returns false
// (leaving the forest empty) when a forest exceeds them — > 65536 distinct
// thresholds or masks, or feature index >= 0x7FFF — and callers simply
// keep the full-width layout. The tuning spaces here are far inside the
// limits; the fallback keeps the layout safe to apply blindly.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rf/feature_matrix.hpp"
#include "rf/flat_forest.hpp"
#include "util/thread_pool.hpp"

namespace pwu::rf {

/// One node of the compacted layout. 8 bytes.
struct QuantNode {
  /// kLeafSentinel for a leaf; otherwise the feature index with
  /// kCategoricalBit set for set-membership splits.
  std::uint16_t feature = kLeafSentinel;
  /// Numerical split: index into the forest's thresholds() table.
  /// Categorical split: index into the cat_masks() table. Leaf: 0.
  std::uint16_t code = 0;
  /// Split: tree-local flat index of the left child (right = left + 1).
  /// Leaf: index into the leaf_values() table.
  std::int32_t left = -1;

  static constexpr std::uint16_t kLeafSentinel = 0xFFFF;
  static constexpr std::uint16_t kCategoricalBit = 0x8000;
  static constexpr std::uint16_t kFeatureMask = 0x7FFF;

  bool is_leaf() const { return feature == kLeafSentinel; }
};
static_assert(sizeof(QuantNode) == 8, "QuantNode must stay 8 bytes");

class QuantizedForest {
 public:
  /// Compacts a built FlatForest (replacing any previous contents).
  /// Returns false — leaving this forest empty — when the source exceeds
  /// the 16-bit code/feature capacity; prediction results are bit-identical
  /// to the source otherwise.
  bool build(const FlatForest& forest);
  void clear();

  bool empty() const { return tree_offsets_.size() < 2; }
  std::size_t num_trees() const {
    return tree_offsets_.empty() ? 0 : tree_offsets_.size() - 1;
  }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Blocked batch evaluation, mirroring FlatForest::predict_stats: the
  /// same block geometry and the same per-row accumulation order, so the
  /// two layouts agree bit-for-bit.
  void predict_stats(const FeatureMatrix& rows, std::span<PredictionStats> out,
                     util::ThreadPool* pool = nullptr) const;

  /// Resident heap footprint of the compacted layout and side tables.
  std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(QuantNode) +
           tree_offsets_.capacity() * sizeof(std::uint32_t) +
           thresholds_.capacity() * sizeof(double) +
           feature_base_.capacity() * sizeof(std::uint32_t) +
           cat_masks_.capacity() * sizeof(std::uint64_t) +
           leaf_values_.capacity() * sizeof(double) +
           tree_categorical_.capacity() * sizeof(std::uint8_t);
  }

  // ---- introspection (tests/bench) ----
  std::span<const QuantNode> nodes() const { return nodes_; }
  std::span<const double> thresholds() const { return thresholds_; }
  std::span<const double> leaf_values() const { return leaf_values_; }
  /// Feature f's codebook spans thresholds()[feature_base()[f],
  /// feature_base()[f + 1]).
  std::span<const std::uint32_t> feature_base() const { return feature_base_; }
  std::size_t num_cat_masks() const { return cat_masks_.size(); }

 private:
  void stats_block(const FeatureMatrix& rows, std::size_t begin,
                   std::size_t end, std::span<PredictionStats> out,
                   std::vector<double>& scratch,
                   std::vector<std::int32_t>& rank_scratch) const;

  /// Fills `ranks` (row-major, stride = number of codebook features) with
  /// the global code of the first threshold >= the row's value per (row,
  /// feature) — the feature's past-the-end code for NaN. `code >= rank`
  /// then reproduces `value <= thresholds[code]` exactly.
  void compute_ranks(const double* base, std::size_t stride, std::size_t nb,
                     std::vector<std::int32_t>& ranks) const;

  std::vector<QuantNode> nodes_;
  /// Tree t owns nodes_[tree_offsets_[t], tree_offsets_[t + 1]).
  std::vector<std::uint32_t> tree_offsets_;
  /// Per-feature threshold codebooks, concatenated; QuantNode::code indexes
  /// this table directly (codes already carry the feature's base offset).
  std::vector<double> thresholds_;
  /// Prefix offsets of each feature's codebook inside thresholds_ (size
  /// num-features + 1); drives the per-block rank precompute.
  std::vector<std::uint32_t> feature_base_;
  std::vector<std::uint64_t> cat_masks_;
  std::vector<double> leaf_values_;
  /// Trees containing categorical splits take the scalar set-membership
  /// walk; SIMD kernels only ever see numerical-only trees.
  std::vector<std::uint8_t> tree_categorical_;
};

}  // namespace pwu::rf
