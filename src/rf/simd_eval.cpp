// Scalar and SSE2 kernel tiers plus the runtime dispatch machinery.
// The AVX2 tier lives in simd_eval_avx2.cpp (its own TU so only that file
// is compiled with -mavx2; this TU must stay runnable on any x86-64).

#include "rf/simd_eval.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "rf/flat_forest.hpp"
#include "rf/quantized_layout.hpp"

#ifdef PWU_SIMD_HAS_SSE2
#include <emmintrin.h>
#endif

namespace pwu::rf::simd {

namespace {

/// Rows walked in lockstep by the scalar tier — the same memory-level
/// parallelism the pre-SIMD traverse_group used.
constexpr std::size_t kScalarGroup = 8;

// ---- scalar tier -----------------------------------------------------------

void flat_tree_scalar(const FlatNode* nodes, const double* rows,
                      std::size_t stride, std::size_t n, double* out) {
  for (std::size_t r = 0; r < n; r += kScalarGroup) {
    const std::size_t g = std::min(kScalarGroup, n - r);
    const double* base = rows + r * stride;
    std::uint32_t cur[kScalarGroup] = {};
    for (;;) {
      bool active = false;
      for (std::size_t j = 0; j < g; ++j) {
        const FlatNode node = nodes[cur[j]];
        if (node.feature < 0) continue;
        active = true;
        const double v = base[j * stride + static_cast<std::size_t>(
                                               node.feature)];
        cur[j] =
            static_cast<std::uint32_t>(node.left) + (v <= node.payload ? 0u : 1u);
      }
      if (!active) break;
    }
    for (std::size_t j = 0; j < g; ++j) out[r + j] = nodes[cur[j]].payload;
  }
}

void quant_tree_scalar(const QuantNode* nodes, const std::int32_t* ranks,
                       std::size_t rank_stride, const double* leaf_values,
                       std::size_t n, double* out) {
  for (std::size_t r = 0; r < n; r += kScalarGroup) {
    const std::size_t g = std::min(kScalarGroup, n - r);
    const std::int32_t* rbase = ranks + r * rank_stride;
    std::uint32_t cur[kScalarGroup] = {};
    for (;;) {
      bool active = false;
      for (std::size_t j = 0; j < g; ++j) {
        const QuantNode node = nodes[cur[j]];
        if (node.is_leaf()) continue;
        active = true;
        const std::int32_t rank = rbase[j * rank_stride + node.feature];
        cur[j] = static_cast<std::uint32_t>(node.left) +
                 (static_cast<std::int32_t>(node.code) >= rank ? 0u : 1u);
      }
      if (!active) break;
    }
    for (std::size_t j = 0; j < g; ++j) {
      out[r + j] = leaf_values[nodes[cur[j]].left];
    }
  }
}

// ---- SSE2 tier -------------------------------------------------------------
//
// flat16: eight rows in lockstep as four pairs — scalar node loads (SSE2
// has no gathers), one packed ordered <= compare per pair per level.
// Walking the same eight rows as the scalar tier keeps eight line fills in
// flight — narrower grouping is dominated by node-table latency, not
// compare throughput. _mm_cmple_pd is false on NaN, so a NaN feature
// routes right exactly like the scalar `v <= threshold`.
//
// quant8 has no SSE2-specific body: the rank walk is a single 32-bit
// integer compare per node with no gathers to vectorize, so the SSE2
// dispatch entry is the scalar loop itself.

#ifdef PWU_SIMD_HAS_SSE2

void flat_tree_sse2(const FlatNode* nodes, const double* rows,
                    std::size_t stride, std::size_t n, double* out) {
  constexpr std::size_t kGroup = 8;
  std::size_t r = 0;
  for (; r + kGroup <= n; r += kGroup) {
    const double* base = rows + r * stride;
    std::uint32_t cur[kGroup] = {};
    for (;;) {
      bool active = false;
      for (std::size_t j = 0; j < kGroup; j += 2) {
        const FlatNode n0 = nodes[cur[j]];
        const FlatNode n1 = nodes[cur[j + 1]];
        const bool leaf0 = n0.feature < 0;
        const bool leaf1 = n1.feature < 0;
        if (leaf0 && leaf1) continue;
        active = true;
        const double* row0 = base + j * stride;
        const double* row1 = row0 + stride;
        const __m128d v = _mm_set_pd(
            leaf1 ? 0.0 : row1[n1.feature],
            leaf0 ? 0.0 : row0[n0.feature]);
        const __m128d t = _mm_set_pd(n1.payload, n0.payload);
        const int le = _mm_movemask_pd(_mm_cmple_pd(v, t));
        if (!leaf0) {
          cur[j] =
              static_cast<std::uint32_t>(n0.left) + ((le & 1) != 0 ? 0u : 1u);
        }
        if (!leaf1) {
          cur[j + 1] =
              static_cast<std::uint32_t>(n1.left) + ((le & 2) != 0 ? 0u : 1u);
        }
      }
      if (!active) break;
    }
    for (std::size_t j = 0; j < kGroup; ++j) {
      out[r + j] = nodes[cur[j]].payload;
    }
  }
  if (r < n) flat_tree_scalar(nodes, rows + r * stride, stride, n - r, out + r);
}

#endif  // PWU_SIMD_HAS_SSE2

// ---- level selection -------------------------------------------------------

Level min_level(Level a, Level b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// -1 = no override; otherwise a Level value.
std::atomic<int> g_override{-1};

Level env_level_clamp() {
  static const Level cached = [] {
    const char* env = std::getenv("PWU_SIMD_LEVEL");
    const std::optional<Level> parsed =
        env != nullptr ? parse_level(env) : std::nullopt;
    return parsed.value_or(Level::Avx2);
  }();
  return cached;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::Scalar: return "scalar";
    case Level::Sse2: return "sse2";
    case Level::Avx2: return "avx2";
  }
  return "unknown";
}

std::optional<Level> parse_level(const char* name) {
  const std::string s = name != nullptr ? name : "";
  if (s == "scalar") return Level::Scalar;
  if (s == "sse2") return Level::Sse2;
  if (s == "avx2") return Level::Avx2;
  return std::nullopt;
}

Level detected_level() {
  static const Level cached = [] {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#ifdef PWU_SIMD_HAS_AVX2
    if (__builtin_cpu_supports("avx2")) return Level::Avx2;
#endif
#ifdef PWU_SIMD_HAS_SSE2
    if (__builtin_cpu_supports("sse2")) return Level::Sse2;
#endif
#endif
    return Level::Scalar;
  }();
  return cached;
}

Level active_level() {
  Level level = min_level(detected_level(), env_level_clamp());
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    level = min_level(detected_level(), static_cast<Level>(forced));
  }
  return level;
}

void set_level_override(Level level) {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

FlatTreeKernel flat_tree_kernel(Level level) {
  level = min_level(level, detected_level());
  switch (level) {
#ifdef PWU_SIMD_HAS_AVX2
    case Level::Avx2: return detail::flat_tree_avx2;
#endif
#ifdef PWU_SIMD_HAS_SSE2
    case Level::Sse2: return flat_tree_sse2;
#endif
    default: return flat_tree_scalar;
  }
}

QuantTreeKernel quant_tree_kernel(Level level) {
  level = min_level(level, detected_level());
  switch (level) {
#ifdef PWU_SIMD_HAS_AVX2
    case Level::Avx2: return detail::quant_tree_avx2;
#endif
    // Sse2 falls through: the integer rank walk has nothing for SSE2 to
    // vectorize (see the tier comment above), so it runs the scalar loop.
    default: return quant_tree_scalar;
  }
}

}  // namespace pwu::rf::simd
