// Best-split search for regression trees (variance-reduction criterion).
//
// Numerical features: sort the node's samples by feature value and scan all
// thresholds between distinct values, maximizing
//     sum_L^2 / n_L + sum_R^2 / n_R
// which is equivalent to minimizing within-child squared error.
//
// Categorical features: Breiman's optimal-grouping device for regression —
// order the levels by their mean label, then scan prefixes of that order as
// the left set. The left set is stored as a 64-bit level mask.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rf/dataset.hpp"

namespace pwu::rf {

struct Split {
  int feature = -1;             // -1 = no valid split found
  bool categorical = false;
  double threshold = 0.0;       // numerical: go left iff x <= threshold
  std::uint64_t left_mask = 0;  // categorical: go left iff bit(level) set
  double gain = 0.0;            // decrease in total squared error

  bool valid() const { return feature >= 0; }

  /// Routing decision for a feature value of this split's feature.
  bool goes_left(double value) const;

  bool operator==(const Split& other) const = default;
};

/// Scratch buffers reused across split searches to avoid per-node
/// allocation churn.
struct SplitWorkspace {
  std::vector<std::pair<double, double>> sorted;  // (feature value, label)
  std::vector<double> cat_sum;
  std::vector<std::size_t> cat_count;
  std::vector<std::size_t> cat_order;
};

/// Finds the best split of `indices` on `feature`. `parent_score` is
/// sum(y)^2/n of the node; gains are relative to it. Returns an invalid
/// split when no threshold satisfies `min_samples_leaf`.
Split best_split_on_feature(const Dataset& data,
                            std::span<const std::size_t> indices,
                            std::size_t feature, double parent_score,
                            std::size_t min_samples_leaf,
                            SplitWorkspace& workspace);

}  // namespace pwu::rf
