// Best-split search for regression trees (variance-reduction criterion).
//
// Numerical features: scan the node's samples in ascending feature order and
// try all thresholds between distinct values, maximizing
//     sum_L^2 / n_L + sum_R^2 / n_R
// which is equivalent to minimizing within-child squared error.
//
// Categorical features: Breiman's optimal-grouping device for regression —
// order the levels by their mean label, then scan prefixes of that order as
// the left set. The left set is stored as a 64-bit level mask.
//
// Two ways to produce the sorted scan order:
//  - presorted columns: SortedColumns sorts every dataset feature column
//    once per forest; SplitWorkspace::init expands that order through the
//    tree's bootstrap multiset in linear time, and node splits then
//    stable-partition the columns so each node range is already sorted —
//    O(n) per feature per node instead of the former copy-and-std::sort
//    O(n log n);
//  - gather: small nodes (and the standalone entry point below) collect
//    (value, key) pairs and sort them on the spot.
// Both paths order ties by (value, dataset row id, instance id), so they
// produce identical scan sequences — and therefore bit-identical sums and
// gains.

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rf/dataset.hpp"

namespace pwu::rf {

struct Split {
  int feature = -1;             // -1 = no valid split found
  bool categorical = false;
  double threshold = 0.0;       // numerical: go left iff x <= threshold
  std::uint64_t left_mask = 0;  // categorical: go left iff bit(level) set
  double gain = 0.0;            // decrease in total squared error

  bool valid() const { return feature >= 0; }

  /// Routing decision for a feature value of this split's feature.
  bool goes_left(double value) const;

  bool operator==(const Split& other) const = default;
};

/// Dataset feature columns sorted once per forest — for each feature, the
/// dataset row ids (and their values, kept alongside for sequential reads)
/// in ascending (value, row id) order. Read-only after build, so every
/// tree's workspace init can share one instance across threads.
struct SortedColumns {
  std::size_t num_rows = 0;
  std::size_t num_features = 0;
  /// Feature f occupies [f*num_rows, (f+1)*num_rows) of both arrays.
  std::vector<std::uint32_t> row_order;
  std::vector<double> sorted_value;

  void build(const Dataset& data);
};

/// Per-tree presorted training state plus the scratch buffers reused across
/// split searches. One instance per tree build; nothing is allocated per
/// node once the tree's arrays are sized.
struct SplitWorkspace {
  /// Nodes at or above this size keep their presorted feature columns
  /// partitioned for the children; smaller subtrees fall back to the gather
  /// path, where sorting a handful of pairs beats touching every column.
  static constexpr std::size_t kColumnCutoff = 64;

  // ---- presorted per-tree state (built by init) ----
  std::size_t num_instances = 0;
  std::size_t num_features = 0;
  std::vector<std::uint32_t> inst_row;  // instance -> dataset row
  std::vector<double> inst_label;       // instance -> label
  /// Feature columns, flattened: column f occupies [f*m, (f+1)*m).
  /// Invariant: within every live node range [lo, hi), order/value hold
  /// exactly the node's instances sorted by (value, row id, instance id).
  std::vector<std::uint32_t> order;
  std::vector<double> value;
  /// The node-partition array (every node owns a contiguous range of it).
  std::vector<std::uint32_t> node_insts;

  // ---- scratch ----
  std::vector<char> left_mark;                         // instance -> side
  std::vector<std::uint32_t> tmp_idx;                  // partition scratch
  std::vector<double> tmp_val;
  std::vector<std::pair<double, std::uint64_t>> gather;  // small-node sort
  std::vector<double> scan_labels;
  std::vector<std::uint32_t> bucket_start;  // row -> first instance slot
  std::vector<std::uint32_t> bucket_insts;  // instances grouped by row
  std::vector<double> cat_sum;
  std::vector<std::size_t> cat_count;
  std::vector<std::size_t> cat_order;

  /// Lays out every feature column of the instance multiset `indices` (one
  /// dataset row per instance, repeats allowed) in canonical sorted order by
  /// expanding the forest-level `sorted` columns through the multiset —
  /// linear per column, replacing both the former per-node sorts and the
  /// former per-tree O(D n log n) sorts.
  void init(const Dataset& data, const SortedColumns& sorted,
            std::span<const std::size_t> indices);
};

/// Finds the best split of the node range [lo, hi) on `feature`, reading
/// the presorted column when `columns_live`, else gathering from
/// node_insts. `node_sum` is the node's label sum and `parent_score` its
/// sum(y)^2/n; gains are relative to the latter. Returns an invalid split
/// when no threshold satisfies `min_samples_leaf`.
Split best_split_presorted(const Dataset& data, SplitWorkspace& ws,
                           std::size_t lo, std::size_t hi, bool columns_live,
                           std::size_t feature, double node_sum,
                           double parent_score, std::size_t min_samples_leaf);

struct PartitionResult {
  std::size_t mid = 0;              // boundary index: left = [lo, mid)
  bool columns_partitioned = false; // children may keep reading the columns
};

/// Stable-partitions the node range [lo, hi) by `split`: node_insts always,
/// and — when `columns_live` and at least one child reaches kColumnCutoff —
/// every feature column too, so that child can keep reading them. Columns
/// are left untouched when both children would gather anyway (the O(D * n)
/// pass would be pure waste).
PartitionResult partition_presorted(const Dataset& data, SplitWorkspace& ws,
                                    std::size_t lo, std::size_t hi,
                                    const Split& split, bool columns_live);

/// Standalone best-split search over dataset rows `indices` (the gather
/// path; ties order by position in `indices`). Kept as the direct, testable
/// entry point.
Split best_split_on_feature(const Dataset& data,
                            std::span<const std::size_t> indices,
                            std::size_t feature, double parent_score,
                            std::size_t min_samples_leaf,
                            SplitWorkspace& workspace);

}  // namespace pwu::rf
