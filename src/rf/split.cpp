#include "rf/split.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pwu::rf {

bool Split::goes_left(double value) const {
  if (categorical) {
    const auto level = static_cast<std::uint64_t>(std::llround(value));
    if (level >= 64) return false;
    return (left_mask >> level) & 1ULL;
  }
  return value <= threshold;
}

namespace {

// Threshold scan over a node's samples presented in ascending feature-value
// order (values[i] pairs with label_at(i)). `label_at` abstracts where the
// labels live: the column path reads inst_label through the sorted order
// array in place, the gather path reads the contiguous buffer it just
// filled — templating keeps both free of an extra gather/copy pass.
template <typename LabelAt>
Split scan_numerical(std::span<const double> values, LabelAt&& label_at,
                     std::size_t feature, double total_sum,
                     double parent_score, std::size_t min_samples_leaf) {
  const std::size_t n = values.size();
  Split best;
  double left_sum = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += label_at(i);
    // Only cut between distinct feature values.
    if (values[i] == values[i + 1]) continue;
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    if (n_left < min_samples_leaf || n_right < min_samples_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(n_left) +
        right_sum * right_sum / static_cast<double>(n_right);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.feature = static_cast<int>(feature);
      best.categorical = false;
      // Midpoint threshold is robust to evaluation-time values between the
      // two training values.
      best.threshold = 0.5 * (values[i] + values[i + 1]);
      best.gain = gain;
    }
  }
  return best;
}

// Breiman's optimal-grouping scan over a node's samples presented in
// ascending level order (any fixed order yields the same grouping; the
// sorted stream keeps per-level sums bit-identical across the presorted and
// gather paths).
template <typename LabelAt>
Split scan_categorical(std::span<const double> values, LabelAt&& label_at,
                       std::size_t levels, std::size_t feature,
                       double parent_score, std::size_t min_samples_leaf,
                       SplitWorkspace& ws) {
  auto& sum = ws.cat_sum;
  auto& count = ws.cat_count;
  auto& order = ws.cat_order;
  sum.assign(levels, 0.0);
  count.assign(levels, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto level = static_cast<std::size_t>(std::llround(values[i]));
    sum[level] += label_at(i);
    ++count[level];
  }

  order.clear();
  for (std::size_t level = 0; level < levels; ++level) {
    if (count[level] > 0) order.push_back(level);
  }
  if (order.size() < 2) return {};  // feature is constant on this node

  // For squared error, the optimal binary grouping is a prefix of the
  // levels ordered by mean label.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sum[a] / static_cast<double>(count[a]) <
           sum[b] / static_cast<double>(count[b]);
  });

  double total_sum = 0.0;
  std::size_t total_count = 0;
  for (std::size_t level : order) {
    total_sum += sum[level];
    total_count += count[level];
  }

  Split best;
  double left_sum = 0.0;
  std::size_t left_count = 0;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    left_sum += sum[order[i]];
    left_count += count[order[i]];
    mask |= 1ULL << order[i];
    const std::size_t right_count = total_count - left_count;
    if (left_count < min_samples_leaf || right_count < min_samples_leaf) {
      continue;
    }
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(left_count) +
        right_sum * right_sum / static_cast<double>(right_count);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.feature = static_cast<int>(feature);
      best.categorical = true;
      best.left_mask = mask;
      best.gain = gain;
    }
  }
  return best;
}

template <typename LabelAt>
Split scan_sorted(const Dataset& data, SplitWorkspace& ws,
                  std::span<const double> values, LabelAt&& label_at,
                  std::size_t feature, double total_sum, double parent_score,
                  std::size_t min_samples_leaf) {
  if (data.is_categorical(feature)) {
    return scan_categorical(values, label_at, data.cardinality(feature),
                            feature, parent_score, min_samples_leaf, ws);
  }
  return scan_numerical(values, label_at, feature, total_sum, parent_score,
                        min_samples_leaf);
}

}  // namespace

void SortedColumns::build(const Dataset& data) {
  const std::size_t n = data.size();
  const std::size_t d = data.num_features();
  num_rows = n;
  num_features = d;
  row_order.resize(d * n);
  sorted_value.resize(d * n);
  std::vector<std::pair<double, std::uint32_t>> keyed(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t r = 0; r < n; ++r) {
      keyed[r] = {data.x(r, f), static_cast<std::uint32_t>(r)};
    }
    // Lexicographic (value, row id): a unique total order, so the column's
    // tie layout is algorithm-independent.
    std::sort(keyed.begin(), keyed.end());
    std::uint32_t* ord = row_order.data() + f * n;
    double* val = sorted_value.data() + f * n;
    for (std::size_t r = 0; r < n; ++r) {
      ord[r] = keyed[r].second;
      val[r] = keyed[r].first;
    }
  }
}

void SplitWorkspace::init(const Dataset& data, const SortedColumns& sorted,
                          std::span<const std::size_t> indices) {
  const std::size_t m = indices.size();
  const std::size_t d = data.num_features();
  num_instances = m;
  num_features = d;
  inst_row.resize(m);
  inst_label.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    inst_row[j] = static_cast<std::uint32_t>(indices[j]);
    inst_label[j] = data.y(indices[j]);
  }
  node_insts.resize(m);
  std::iota(node_insts.begin(), node_insts.end(), std::uint32_t{0});
  left_mark.assign(m, 0);
  tmp_idx.resize(m);
  tmp_val.resize(m);

  // Small trees never touch the columns (every node gathers), so skip the
  // expansion cost entirely.
  if (m < kColumnCutoff) {
    order.clear();
    value.clear();
    return;
  }

  // Bucket the instance multiset by dataset row, ascending instance id
  // within each bucket (the fill loop runs j ascending). Counting-sort
  // layout: after the fill, bucket r occupies
  // [r == 0 ? 0 : bucket_start[r-1], bucket_start[r]).
  const std::size_t n = sorted.num_rows;
  bucket_start.assign(n, 0);
  for (std::size_t j = 0; j < m; ++j) ++bucket_start[inst_row[j]];
  std::uint32_t running = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t count = bucket_start[r];
    bucket_start[r] = running;
    running += count;
  }
  bucket_insts.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    bucket_insts[bucket_start[inst_row[j]]++] = static_cast<std::uint32_t>(j);
  }

  // Expand each forest-level sorted column through the buckets: instances
  // come out in (value, row id, instance id) order, in linear time instead
  // of a per-tree sort.
  order.resize(d * m);
  value.resize(d * m);
  for (std::size_t f = 0; f < d; ++f) {
    const std::uint32_t* src_ord = sorted.row_order.data() + f * n;
    const double* src_val = sorted.sorted_value.data() + f * n;
    std::uint32_t* ord = order.data() + f * m;
    double* val = value.data() + f * m;
    std::size_t k = 0;
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::uint32_t row = src_ord[pos];
      const double v = src_val[pos];
      const std::uint32_t e = bucket_start[row];
      for (std::uint32_t b = row == 0 ? 0 : bucket_start[row - 1]; b < e;
           ++b) {
        ord[k] = bucket_insts[b];
        val[k] = v;
        ++k;
      }
    }
  }
}

Split best_split_presorted(const Dataset& data, SplitWorkspace& ws,
                           std::size_t lo, std::size_t hi, bool columns_live,
                           std::size_t feature, double node_sum,
                           double parent_score,
                           std::size_t min_samples_leaf) {
  const std::size_t n = hi - lo;
  if (n < 2) return {};
  if (columns_live) {
    const std::size_t base = feature * ws.num_instances;
    const std::uint32_t* ord = ws.order.data() + base + lo;
    const double* labels = ws.inst_label.data();
    const std::span<const double> values(ws.value.data() + base + lo, n);
    return scan_sorted(
        data, ws, values, [ord, labels](std::size_t i) { return labels[ord[i]]; },
        feature, node_sum, parent_score, min_samples_leaf);
  }
  // Gather path: sort this node's values on the spot, keyed exactly like
  // the columns — (value, dataset row id, instance id), with the two ids
  // packed into one 64-bit tiebreak — so the resulting stream is identical
  // to what a live column would hold.
  ws.gather.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t inst = ws.node_insts[lo + i];
    const std::uint32_t row = ws.inst_row[inst];
    ws.gather[i] = {data.x(row, feature),
                    (static_cast<std::uint64_t>(row) << 32) | inst};
  }
  std::sort(ws.gather.begin(), ws.gather.begin() + static_cast<std::ptrdiff_t>(n));
  ws.tmp_val.resize(std::max(ws.tmp_val.size(), n));
  ws.scan_labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.tmp_val[i] = ws.gather[i].first;
    const auto inst = static_cast<std::uint32_t>(ws.gather[i].second);
    ws.scan_labels[i] = ws.inst_label[inst];
  }
  const std::span<const double> values(ws.tmp_val.data(), n);
  const double* labels = ws.scan_labels.data();
  return scan_sorted(
      data, ws, values, [labels](std::size_t i) { return labels[i]; },
      feature, node_sum, parent_score, min_samples_leaf);
}

PartitionResult partition_presorted(const Dataset& data, SplitWorkspace& ws,
                                    std::size_t lo, std::size_t hi,
                                    const Split& split, bool columns_live) {
  const auto feature = static_cast<std::size_t>(split.feature);
  std::size_t n_left = 0;
  if (columns_live) {
    // The split feature's own column already holds this node's values in
    // sorted order: mark through it sequentially instead of re-fetching
    // each instance's value from the dataset.
    const std::size_t base = feature * ws.num_instances;
    const std::uint32_t* ord = ws.order.data() + base;
    const double* val = ws.value.data() + base;
    for (std::size_t i = lo; i < hi; ++i) {
      const bool left = split.goes_left(val[i]);
      ws.left_mark[ord[i]] = left ? 1 : 0;
      n_left += left ? 1u : 0u;
    }
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t inst = ws.node_insts[i];
      const bool left = split.goes_left(data.x(ws.inst_row[inst], feature));
      ws.left_mark[inst] = left ? 1 : 0;
      n_left += left ? 1u : 0u;
    }
  }
  const std::size_t mid = lo + n_left;
  if (mid == lo || mid == hi) {
    return {mid, false};  // degenerate; caller keeps a leaf
  }
  // Carrying the columns costs O(D * n); it only pays off if some child is
  // big enough to read them (column use never resumes once dropped, because
  // subtree sizes only shrink).
  const std::size_t n_right = hi - mid;
  const bool partition_columns =
      columns_live && (n_left >= SplitWorkspace::kColumnCutoff ||
                       n_right >= SplitWorkspace::kColumnCutoff);

  // Stable partition: write lefts forward in place (the write cursor never
  // passes the read cursor), stash rights in scratch, copy them back.
  auto stable_split = [&](std::uint32_t* ids, double* vals) {
    std::size_t w = lo;
    std::size_t t = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t inst = ids[i];
      if (ws.left_mark[inst]) {
        ids[w] = inst;
        if (vals != nullptr) vals[w] = vals[i];
        ++w;
      } else {
        ws.tmp_idx[t] = inst;
        if (vals != nullptr) ws.tmp_val[t] = vals[i];
        ++t;
      }
    }
    std::copy_n(ws.tmp_idx.data(), t, ids + mid);
    if (vals != nullptr) std::copy_n(ws.tmp_val.data(), t, vals + mid);
  };

  stable_split(ws.node_insts.data(), nullptr);
  if (partition_columns) {
    const std::size_t m = ws.num_instances;
    for (std::size_t f = 0; f < ws.num_features; ++f) {
      stable_split(ws.order.data() + f * m, ws.value.data() + f * m);
    }
  }
  return {mid, partition_columns};
}

Split best_split_on_feature(const Dataset& data,
                            std::span<const std::size_t> indices,
                            std::size_t feature, double parent_score,
                            std::size_t min_samples_leaf,
                            SplitWorkspace& workspace) {
  const std::size_t n = indices.size();
  if (n < 2) return {};
  auto& gather = workspace.gather;
  gather.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    gather[i] = {data.x(indices[i], feature), static_cast<std::uint32_t>(i)};
  }
  std::sort(gather.begin(), gather.end());
  workspace.tmp_val.resize(std::max(workspace.tmp_val.size(), n));
  workspace.scan_labels.resize(n);
  double total_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    workspace.tmp_val[i] = gather[i].first;
    workspace.scan_labels[i] = data.y(indices[gather[i].second]);
    total_sum += workspace.scan_labels[i];
  }
  const std::span<const double> values(workspace.tmp_val.data(), n);
  const double* labels = workspace.scan_labels.data();
  return scan_sorted(
      data, workspace, values, [labels](std::size_t i) { return labels[i]; },
      feature, total_sum, parent_score, min_samples_leaf);
}

}  // namespace pwu::rf
