#include "rf/split.hpp"

#include <algorithm>
#include <cmath>

namespace pwu::rf {

bool Split::goes_left(double value) const {
  if (categorical) {
    const auto level = static_cast<std::uint64_t>(std::llround(value));
    if (level >= 64) return false;
    return (left_mask >> level) & 1ULL;
  }
  return value <= threshold;
}

namespace {

Split best_numerical_split(const Dataset& data,
                           std::span<const std::size_t> indices,
                           std::size_t feature, double parent_score,
                           std::size_t min_samples_leaf,
                           SplitWorkspace& ws) {
  auto& sorted = ws.sorted;
  sorted.clear();
  sorted.reserve(indices.size());
  for (std::size_t idx : indices) {
    sorted.emplace_back(data.x(idx, feature), data.y(idx));
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::size_t n = sorted.size();
  double left_sum = 0.0;
  double total_sum = 0.0;
  for (const auto& [value, label] : sorted) total_sum += label;

  Split best;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += sorted[i].second;
    // Only cut between distinct feature values.
    if (sorted[i].first == sorted[i + 1].first) continue;
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    if (n_left < min_samples_leaf || n_right < min_samples_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(n_left) +
        right_sum * right_sum / static_cast<double>(n_right);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.feature = static_cast<int>(feature);
      best.categorical = false;
      // Midpoint threshold is robust to evaluation-time values between the
      // two training values.
      best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      best.gain = gain;
    }
  }
  return best;
}

Split best_categorical_split(const Dataset& data,
                             std::span<const std::size_t> indices,
                             std::size_t feature, double parent_score,
                             std::size_t min_samples_leaf,
                             SplitWorkspace& ws) {
  const std::size_t levels = data.cardinality(feature);
  auto& sum = ws.cat_sum;
  auto& count = ws.cat_count;
  auto& order = ws.cat_order;
  sum.assign(levels, 0.0);
  count.assign(levels, 0);
  for (std::size_t idx : indices) {
    const auto level =
        static_cast<std::size_t>(std::llround(data.x(idx, feature)));
    sum[level] += data.y(idx);
    ++count[level];
  }

  order.clear();
  for (std::size_t level = 0; level < levels; ++level) {
    if (count[level] > 0) order.push_back(level);
  }
  if (order.size() < 2) return {};  // feature is constant on this node

  // Breiman's trick: for squared error, the optimal binary grouping is a
  // prefix of the levels ordered by mean label.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sum[a] / static_cast<double>(count[a]) <
           sum[b] / static_cast<double>(count[b]);
  });

  double total_sum = 0.0;
  std::size_t total_count = 0;
  for (std::size_t level : order) {
    total_sum += sum[level];
    total_count += count[level];
  }

  Split best;
  double left_sum = 0.0;
  std::size_t left_count = 0;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    left_sum += sum[order[i]];
    left_count += count[order[i]];
    mask |= 1ULL << order[i];
    const std::size_t right_count = total_count - left_count;
    if (left_count < min_samples_leaf || right_count < min_samples_leaf) {
      continue;
    }
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(left_count) +
        right_sum * right_sum / static_cast<double>(right_count);
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.feature = static_cast<int>(feature);
      best.categorical = true;
      best.left_mask = mask;
      best.gain = gain;
    }
  }
  return best;
}

}  // namespace

Split best_split_on_feature(const Dataset& data,
                            std::span<const std::size_t> indices,
                            std::size_t feature, double parent_score,
                            std::size_t min_samples_leaf,
                            SplitWorkspace& workspace) {
  if (indices.size() < 2) return {};
  if (data.is_categorical(feature)) {
    return best_categorical_split(data, indices, feature, parent_score,
                                  min_samples_leaf, workspace);
  }
  return best_numerical_split(data, indices, feature, parent_score,
                              min_samples_leaf, workspace);
}

}  // namespace pwu::rf
