// Flat batched inference engine for fitted tree ensembles.
//
// After fit/load, every tree's node table is compiled into one contiguous
// array of 16-byte nodes in breadth-first order. Batched prediction then
// runs in cache-blocked (row-block x tree) order: a tree's nodes stay
// resident in L1/L2 while a block of rows traverses it, instead of every
// row re-faulting every tree's 48-byte pointer-chased nodes. Evaluation is
// bit-exact with the tree-walk reference: the same routing decisions, the
// same leaf doubles, and per-row accumulation in the same tree order.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rf/decision_tree.hpp"
#include "rf/feature_matrix.hpp"
#include "util/thread_pool.hpp"

namespace pwu::rf {

struct PredictionStats {
  double mean = 0.0;
  double variance = 0.0;  // across trees (population variance)
  double stddev = 0.0;
};

/// One node of the flat evaluation layout. 16 bytes: the per-node split
/// gain and the separate right-child index of the build-time
/// DecisionTree::Node are dropped from the hot struct — breadth-first
/// layout places siblings adjacently, so right = left + 1.
struct FlatNode {
  /// Leaf: prediction. Numerical split: threshold. Categorical split: the
  /// 64-bit left-level mask, bit-cast (never interpreted as a double).
  double payload = 0.0;
  /// -1 for a leaf; otherwise the feature index, with kCategoricalFlag set
  /// for set-membership splits.
  std::int32_t feature = -1;
  /// Tree-local flat index of the left child (right child = left + 1).
  std::int32_t left = -1;

  static constexpr std::int32_t kCategoricalFlag = 1 << 30;
  static constexpr std::int32_t kFeatureMask = kCategoricalFlag - 1;
};
static_assert(sizeof(FlatNode) == 16, "FlatNode must stay 16 bytes");

class FlatForest {
 public:
  /// Compiles the fitted trees into the flat layout (replacing any previous
  /// contents).
  void build(std::span<const DecisionTree> trees);
  void clear();

  bool empty() const { return tree_offsets_.size() < 2; }
  std::size_t num_trees() const {
    return tree_offsets_.empty() ? 0 : tree_offsets_.size() - 1;
  }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Ensemble mean for one row.
  double predict_one(std::span<const double> row) const;

  /// Mean and across-tree spread for one row.
  PredictionStats predict_stats_one(std::span<const double> row) const;

  /// Per-tree predictions for one row (out.size() == num_trees()) — the
  /// building block for OOB-style masked aggregation.
  void predict_per_tree(std::span<const double> row,
                        std::span<double> out) const;

  /// Per-tree predictions for a block of rows, tree-major:
  /// out[t * n + r] is tree t's leaf value for rows[r]. Runs the same
  /// interleaved blocked order as the batch evaluators (out.size() must be
  /// num_trees() * n).
  void predict_per_tree_block(const double* const* rows, std::size_t n,
                              std::span<double> out) const;

  /// Resident heap footprint of the compiled layout.
  std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(FlatNode) +
           tree_offsets_.capacity() * sizeof(std::uint32_t) +
           tree_categorical_.capacity() * sizeof(std::uint8_t);
  }

  /// Blocked batch evaluation; row blocks run on `pool` when provided.
  void predict_stats(const FeatureMatrix& rows, std::span<PredictionStats> out,
                     util::ThreadPool* pool = nullptr) const;
  void predict_mean(const FeatureMatrix& rows, std::span<double> out,
                    util::ThreadPool* pool = nullptr) const;

  /// Rows per cache block: 256 rows x 200 trees of scratch is 400 KB,
  /// inside L2, while one tree's nodes stream through L1; the wide block
  /// amortizes each tree's node-table sweep over enough rows to keep the
  /// SIMD kernels' gather chains fed (64 left them latency-bound on node
  /// refetches). Public so external schedulers (the SessionManager's
  /// cross-session ask fusion) can carve their own block grids.
  static constexpr std::size_t kRowBlock = 256;

  /// One cache block of predict_stats, exposed for fused scoring: fills
  /// out[begin, end) for rows [begin, end) (end - begin <= kRowBlock).
  /// Blocks are independent, so any schedule over them — including one
  /// interleaving blocks of *different* forests — produces bit-identical
  /// results to predict_stats.
  void predict_stats_block(const FeatureMatrix& rows, std::size_t begin,
                           std::size_t end, std::span<PredictionStats> out,
                           std::vector<double>& scratch) const {
    stats_block(rows, begin, end, out, scratch);
  }

  /// Raw compiled layout (the QuantizedForest compaction pass reads it).
  std::span<const FlatNode> nodes() const { return nodes_; }
  std::span<const std::uint32_t> tree_offsets() const { return tree_offsets_; }

 private:
  void stats_block(const FeatureMatrix& rows, std::size_t begin,
                   std::size_t end, std::span<PredictionStats> out,
                   std::vector<double>& scratch) const;
  void mean_block(const FeatureMatrix& rows, std::size_t begin,
                  std::size_t end, std::span<double> out,
                  std::vector<double>& scratch) const;

  std::vector<FlatNode> nodes_;
  /// Tree t owns nodes_[tree_offsets_[t], tree_offsets_[t + 1]).
  std::vector<std::uint32_t> tree_offsets_;
  /// Trees containing categorical splits take the scalar set-membership
  /// walk in the batch evaluators; SIMD kernels only see numerical-only
  /// trees (rf/simd_eval.hpp).
  std::vector<std::uint8_t> tree_categorical_;
};

}  // namespace pwu::rf
