// Runtime-dispatched SIMD kernels for the flat tree-evaluation hot path.
//
// This is the only sanctioned doorway to vector intrinsics in the tree
// engine (enforced by the pwu_lint rule `no-unchecked-simd`): callers pick
// a kernel through flat_tree_kernel()/quant_tree_kernel() and never touch
// <immintrin.h> themselves. Three tiers exist per node layout:
//
//   Scalar  portable reference — the 8-row interleaved lockstep walk the
//           pre-SIMD engine ran, restated over a contiguous row block;
//   SSE2    flat16: 8-row lockstep with packed ordered compares (baseline
//           on x86-64); quant8's rank walk is integer-only, so its SSE2
//           tier shares the scalar loop;
//   AVX2    flat16: 32 rows per tree level as eight 4-lane gather groups;
//           quant8: 32 rows as four 8-lane epi32 groups walking on
//           precomputed threshold ranks (see QuantTreeKernel).
//
// Every tier routes rows identically (the same `value <= threshold`
// ordered-compare semantics, NaN to the right — the quant rank coding
// reproduces it bit-for-bit in integer space) and emits the same leaf
// doubles, so the dispatch level never changes a prediction bit. Kernels
// handle numerical splits only: trees containing categorical splits take
// the llround set-membership walk in flat_forest.cpp regardless of level.
//
// Selection: the strongest tier compiled in (PWU_SIMD CMake option) and
// supported by the running CPU wins; the PWU_SIMD_LEVEL environment
// variable (scalar|sse2|avx2) or set_level_override() clamps it down —
// that is how the `simd` ctest preset pins the scalar fallback on AVX2
// hosts, and how bench/micro_rf sweeps the matrix.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace pwu::rf {

struct FlatNode;
struct QuantNode;

namespace simd {

enum class Level { Scalar = 0, Sse2 = 1, Avx2 = 2 };

const char* level_name(Level level);

/// Strongest tier both compiled in and supported by this CPU.
Level detected_level();

/// detected_level() clamped by the PWU_SIMD_LEVEL environment variable
/// (read once) and by any set_level_override() — what dispatch actually
/// uses.
Level active_level();

/// Test/bench hook: force a level (still clamped to detected_level()).
void set_level_override(Level level);
void clear_level_override();

/// Evaluates one tree (numerical splits only) over `n` consecutive rows:
/// row r starts at rows + r * stride. out[r] receives the leaf payload.
using FlatTreeKernel = void (*)(const FlatNode* nodes, const double* rows,
                                std::size_t stride, std::size_t n,
                                double* out);

/// Same contract over the 8-byte quantized layout, but driven by the
/// precomputed rank matrix instead of raw feature doubles: row r's ranks
/// live at ranks + r * rank_stride, and ranks[r][f] is the first code in
/// feature f's codebook whose threshold is >= the row's value (the
/// feature's past-the-end code for NaN). A split routes left iff
/// `node.code >= rank` — exactly `value <= thresholds[code]` — so the
/// whole walk is 32-bit integer compares against a block-resident table.
/// `leaf_values` is the leaf table (indexed by a leaf's QuantNode::left).
using QuantTreeKernel = void (*)(const QuantNode* nodes,
                                 const std::int32_t* ranks,
                                 std::size_t rank_stride,
                                 const double* leaf_values, std::size_t n,
                                 double* out);

/// Kernel for `level`, clamped to detected_level().
FlatTreeKernel flat_tree_kernel(Level level);
QuantTreeKernel quant_tree_kernel(Level level);

/// Parses "scalar"/"sse2"/"avx2" (nullopt otherwise).
std::optional<Level> parse_level(const char* name);

namespace detail {

/// AVX2 tier, defined in simd_eval_avx2.cpp — the one TU built with
/// -mavx2. Only referenced by dispatch when PWU_SIMD_HAS_AVX2 is set;
/// never call directly (the running CPU may not support AVX2).
void flat_tree_avx2(const FlatNode* nodes, const double* rows,
                    std::size_t stride, std::size_t n, double* out);
void quant_tree_avx2(const QuantNode* nodes, const std::int32_t* ranks,
                     std::size_t rank_stride, const double* leaf_values,
                     std::size_t n, double* out);

}  // namespace detail

}  // namespace simd

}  // namespace pwu::rf
