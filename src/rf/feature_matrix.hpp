// Contiguous row-major feature matrix — the batched-prediction currency.
//
// Every pool-scoring and evaluation path used to carry a
// std::vector<std::vector<double>> (one heap allocation per candidate,
// scattered rows). FeatureMatrix stores all rows in one buffer and hands out
// spans, so a 10^4-row pool is a single allocation that stays resident in
// cache while the forest's flat node array streams over it.

#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace pwu::rf {

class FeatureMatrix {
 public:
  FeatureMatrix() = default;

  /// Zero-initialized rows x cols matrix.
  FeatureMatrix(std::size_t rows, std::size_t cols)
      : cols_(cols), data_(rows * cols, 0.0) {}

  /// Empty matrix with the given width and row capacity reserved.
  static FeatureMatrix with_capacity(std::size_t cols, std::size_t rows) {
    FeatureMatrix m;
    m.cols_ = cols;
    m.data_.reserve(rows * cols);
    return m;
  }

  /// Copies nested rows (all must share one width).
  static FeatureMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t num_rows() const { return cols_ == 0 ? 0 : data_.size() / cols_; }
  std::size_t num_cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }
  std::span<double> row(std::size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  /// Appends one row; the width must match (first append fixes it when the
  /// matrix was default-constructed).
  void add_row(std::span<const double> values);

  /// Appends an uninitialized row and returns a writable span over it.
  std::span<double> append_row();

  /// Swap-with-last row removal, mirroring CandidatePool::take so a pool
  /// and its feature rows stay index-aligned.
  void remove_row_swap(std::size_t r);

  void clear() { data_.clear(); }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Resident heap footprint (capacity, not size — what the allocator holds).
  std::size_t memory_bytes() const { return data_.capacity() * sizeof(double); }

 private:
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pwu::rf
