#include "rf/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/fs_atomic.hpp"
#include "util/statistics.hpp"

namespace pwu::rf {

void RandomForest::fit(const Dataset& data, const ForestConfig& config,
                       util::Rng& rng PWU_RNG_STREAM(forest_fit),
                       util::ThreadPool* pool,
                       const util::CancelToken* cancel) {
  if (data.empty()) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  if (config.num_trees == 0) {
    throw std::invalid_argument("RandomForest::fit: num_trees must be > 0");
  }
  config_ = config;
  trees_.assign(config.num_trees, DecisionTree());

  const std::size_t n = data.size();

  // Fork one child stream per tree up front so parallel construction is
  // bit-identical to serial construction.
  std::vector<util::Rng> tree_rngs;
  tree_rngs.reserve(config.num_trees);
  for (std::size_t t = 0; t < config.num_trees; ++t) {
    tree_rngs.push_back(rng.fork());
  }

  std::vector<std::vector<char>> in_bag;
  if (config.compute_oob) in_bag.assign(config.num_trees, {});

  // Sort the dataset's feature columns once; every tree expands this shared
  // read-only order through its own bootstrap in linear time.
  SortedColumns sorted_columns;
  sorted_columns.build(data);

  auto build_tree = [&](std::size_t t) {
    // Tree boundaries are the cancellation checkpoints: cheap enough to poll
    // (one relaxed atomic load per tree), frequent enough that a cancelled
    // refit unwinds within one tree's build time.
    if (cancel != nullptr) cancel->throw_if_requested();
    // Reference-bind the tree's forked stream: the draw below then
    // resolves to an annotated local (tree_rngs[t] itself is opaque to
    // pwu_lint's receiver resolution).
    util::Rng& tree_rng PWU_RNG_STREAM(tree_bootstrap) = tree_rngs[t];
    std::vector<std::size_t> indices;
    if (config.bootstrap) {
      indices = tree_rng.bootstrap_indices(n);
    } else {
      indices.resize(n);
      std::iota(indices.begin(), indices.end(), std::size_t{0});
    }
    if (config.compute_oob) {
      in_bag[t].assign(n, 0);
      for (std::size_t idx : indices) in_bag[t][idx] = 1;
    }
    trees_[t].fit(data, std::move(indices), config.tree, tree_rngs[t],
                  &sorted_columns);
  };

  try {
    if (pool != nullptr && pool->num_threads() > 1) {
      pool->parallel_for(0, config.num_trees, build_tree);
    } else {
      for (std::size_t t = 0; t < config.num_trees; ++t) build_tree(t);
    }
  } catch (...) {
    // Cancelled (or failed) mid-ensemble: drop the partial trees so
    // fitted() reports false instead of exposing a half-built forest.
    trees_.clear();
    flat_.clear();
    throw;
  }

  flat_.build(trees_);

  has_oob_ = false;
  if (config.compute_oob) {
    // Per-sample OOB errors computed block-wise through the flat per-tree
    // evaluator (parallel over blocks when a pool is given), then reduced in
    // ascending sample order so the result matches the serial pass
    // bit-for-bit: each sample's vote sum runs over trees ascending either
    // way.
    constexpr std::size_t kOobBlock = 64;
    std::vector<double> sq_err(n);
    std::vector<char> has_vote(n, 0);
    const std::size_t blocks = (n + kOobBlock - 1) / kOobBlock;
    auto oob_block = [&](std::size_t block, std::vector<double>& scratch) {
      const std::size_t begin = block * kOobBlock;
      const std::size_t end = std::min(begin + kOobBlock, n);
      const std::size_t nb = end - begin;
      const double* row_ptrs[kOobBlock];
      for (std::size_t r = 0; r < nb; ++r) {
        row_ptrs[r] = data.row(begin + r).data();
      }
      scratch.resize(config_.num_trees * nb);
      flat_.predict_per_tree_block(row_ptrs, nb, scratch);
      for (std::size_t r = 0; r < nb; ++r) {
        const std::size_t i = begin + r;
        double sum = 0.0;
        std::size_t votes = 0;
        for (std::size_t t = 0; t < config_.num_trees; ++t) {
          if (!in_bag[t][i]) {
            sum += scratch[t * nb + r];
            ++votes;
          }
        }
        if (votes > 0) {
          const double err = sum / static_cast<double>(votes) - data.y(i);
          sq_err[i] = err * err;
          has_vote[i] = 1;
        }
      }
    };
    if (pool != nullptr && pool->num_threads() > 1 && n > 64) {
      pool->parallel_for(0, blocks, [&](std::size_t block) {
        thread_local std::vector<double> scratch;
        oob_block(block, scratch);
      });
    } else {
      std::vector<double> scratch;
      for (std::size_t block = 0; block < blocks; ++block) {
        oob_block(block, scratch);
      }
    }
    double sq_sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (has_vote[i]) {
        sq_sum += sq_err[i];
        ++counted;
      }
    }
    if (counted > 0) {
      oob_rmse_ = std::sqrt(sq_sum / static_cast<double>(counted));
      has_oob_ = true;
    }
  }
}

double RandomForest::predict(std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict before fit");
  }
  return flat_.predict_one(row);
}

PredictionStats RandomForest::predict_stats(std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict_stats before fit");
  }
  return flat_.predict_stats_one(row);
}

PredictionStats RandomForest::predict_stats_reference(
    std::span<const double> row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict_stats_reference before fit");
  }
  // Two passes over the per-tree outputs: the deviation form avoids the
  // catastrophic cancellation of sum-of-squares minus squared-mean when
  // trees agree to many digits.
  std::vector<double> per_tree;
  per_tree.reserve(trees_.size());
  double sum = 0.0;
  for (const auto& tree : trees_) {
    const double p = tree.predict(row);
    per_tree.push_back(p);
    sum += p;
  }
  const auto b = static_cast<double>(trees_.size());
  PredictionStats stats;
  stats.mean = sum / b;
  double sq_dev = 0.0;
  for (double p : per_tree) {
    const double d = p - stats.mean;
    sq_dev += d * d;
  }
  stats.variance = sq_dev / b;
  stats.stddev = std::sqrt(stats.variance);
  return stats;
}

std::vector<PredictionStats> RandomForest::predict_stats_batch(
    const FeatureMatrix& rows, util::ThreadPool* pool) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict_stats_batch before fit");
  }
  std::vector<PredictionStats> out(rows.num_rows());
  flat_.predict_stats(rows, out, pool);
  return out;
}

double RandomForest::oob_rmse() const {
  return has_oob_ ? oob_rmse_ : std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> RandomForest::permutation_importance(
    const Dataset& reference, util::Rng& rng PWU_RNG_STREAM(permutation),
    util::ThreadPool* pool) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::permutation_importance before fit");
  }
  const std::size_t n = reference.size();
  const std::size_t d = reference.num_features();
  if (n == 0) return std::vector<double>(d, 0.0);

  // One scratch matrix for the whole sweep: permute a column in place,
  // batch-predict, restore it from the reference.
  FeatureMatrix scratch = FeatureMatrix::with_capacity(d, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = reference.row(i);
    auto dst = scratch.append_row();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  std::vector<double> predictions(n);

  auto mse = [&]() {
    flat_.predict_mean(scratch, predictions, pool);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double err = predictions[i] - reference.y(i);
      acc += err * err;
    }
    return acc / static_cast<double>(n);
  };

  const double baseline = mse();
  std::vector<double> importance(d);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t f = 0; f < d; ++f) {
    rng.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) {
      scratch(i, f) = reference.x(perm[i], f);
    }
    importance[f] = mse() - baseline;
    for (std::size_t i = 0; i < n; ++i) {
      scratch(i, f) = reference.x(i, f);
    }
  }
  return importance;
}

std::size_t RandomForest::total_nodes() const {
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.num_nodes();
  return total;
}

std::size_t RandomForest::memory_bytes() const {
  std::size_t total = flat_.memory_bytes();
  for (const auto& tree : trees_) total += tree.memory_bytes();
  return total;
}

std::size_t RandomForest::max_depth() const {
  std::size_t depth = 0;
  for (const auto& tree : trees_) depth = std::max(depth, tree.depth());
  return depth;
}

void RandomForest::save(std::ostream& os) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::save before fit");
  }
  os << "pwu-random-forest 1\n";
  os << trees_.size() << ' ' << config_.tree.max_depth << ' '
     << config_.tree.min_samples_leaf << ' ' << config_.tree.min_samples_split
     << ' ' << config_.tree.mtry << ' ' << (config_.bootstrap ? 1 : 0)
     << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForest::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "pwu-random-forest" ||
      version != 1) {
    throw std::runtime_error("RandomForest::load: bad header");
  }
  std::size_t num_trees = 0;
  int bootstrap = 1;
  ForestConfig config;
  if (!(is >> num_trees >> config.tree.max_depth >>
        config.tree.min_samples_leaf >> config.tree.min_samples_split >>
        config.tree.mtry >> bootstrap) ||
      num_trees == 0) {
    throw std::runtime_error("RandomForest::load: bad config line");
  }
  config.num_trees = num_trees;
  config.bootstrap = bootstrap != 0;
  std::vector<DecisionTree> trees(num_trees);
  for (auto& tree : trees) tree.load(is);
  trees_ = std::move(trees);
  flat_.build(trees_);
  config_ = config;
  has_oob_ = false;
}

void RandomForest::save_file(const std::string& path) const {
  std::ostringstream out;
  save(out);
  if (!out) {
    throw std::runtime_error("RandomForest::save_file: serialization failed");
  }
  // Torn forest files are unrecoverable (and silently poison resumed
  // sessions), so the write goes through the crash-safe path: tmp + CRC
  // footer + fsync + rename.
  util::atomic_write_file(path, out.str());
}

RandomForest RandomForest::load_file(const std::string& path) {
  RandomForest forest;
  const util::VerifiedRead verified = util::read_verified_file(path);
  if (verified.status == util::ReadStatus::Ok) {
    std::istringstream in(verified.payload);
    forest.load(in);
    return forest;
  }
  // Legacy / golden-fixture files predate the CRC footer; read them as-is.
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RandomForest::load_file: cannot open " + path);
  }
  forest.load(in);
  return forest;
}

}  // namespace pwu::rf
