#include "rf/flat_forest.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "rf/simd_eval.hpp"
#include "util/contracts.hpp"

namespace pwu::rf {

namespace {

/// Leaf value for one row in one tree. Routing replicates Split::goes_left
/// exactly: numerical go left iff value <= threshold, categorical go left
/// iff the level's mask bit is set (levels >= 64 go right).
inline double traverse(const FlatNode* nodes, const double* row) {
  std::uint32_t i = 0;
  for (;;) {
    const FlatNode node = nodes[i];
    if (node.feature < 0) return node.payload;
    const double v = row[node.feature & FlatNode::kFeatureMask];
    bool left;
    if (node.feature & FlatNode::kCategoricalFlag) {
      const auto level = static_cast<std::uint64_t>(std::llround(v));
      left = level < 64 &&
             ((std::bit_cast<std::uint64_t>(node.payload) >> level) & 1ULL);
    } else {
      left = v <= node.payload;
    }
    i = static_cast<std::uint32_t>(node.left) + (left ? 0u : 1u);
  }
}

/// Rows interleaved per traversal step. A single row's walk is a chain of
/// dependent loads (each node address depends on the previous node's
/// outcome); stepping a group of rows through the same tree in lockstep
/// keeps that many independent chains in flight, so the node-load latency
/// overlaps instead of serializing.
constexpr std::size_t kGroup = 8;

/// Walks `g` (<= kGroup) rows through one tree simultaneously and writes
/// each row's leaf value to out[j]. Rows that reach a leaf early just
/// re-test the (cached) leaf node until the stragglers finish; outputs are
/// identical to per-row traverse().
inline void traverse_group(const FlatNode* nodes,
                           const double* const* row_ptrs, std::size_t g,
                           double* out) {
  std::uint32_t cur[kGroup] = {};
  for (;;) {
    bool active = false;
    for (std::size_t j = 0; j < g; ++j) {
      const FlatNode node = nodes[cur[j]];
      if (node.feature < 0) continue;
      active = true;
      const double v = row_ptrs[j][node.feature & FlatNode::kFeatureMask];
      bool left;
      if (node.feature & FlatNode::kCategoricalFlag) {
        const auto level = static_cast<std::uint64_t>(std::llround(v));
        left = level < 64 &&
               ((std::bit_cast<std::uint64_t>(node.payload) >> level) & 1ULL);
      } else {
        left = v <= node.payload;
      }
      cur[j] = static_cast<std::uint32_t>(node.left) + (left ? 0u : 1u);
    }
    if (!active) break;
  }
  for (std::size_t j = 0; j < g; ++j) out[j] = nodes[cur[j]].payload;
}

}  // namespace

void FlatForest::build(std::span<const DecisionTree> trees) {
  clear();
  std::size_t total = 0;
  for (const auto& tree : trees) total += tree.num_nodes();
  nodes_.reserve(total);
  tree_offsets_.reserve(trees.size() + 1);

  tree_categorical_.reserve(trees.size());

  std::vector<std::int32_t> bfs;  // original node ids in breadth-first order
  for (const auto& tree : trees) {
    const auto& src_nodes = tree.nodes();
    if (src_nodes.empty()) {
      throw std::logic_error("FlatForest::build: unfitted tree");
    }
    bfs.assign(1, 0);
    bool categorical = false;
    // Flat local index of a node == its position in the BFS order; children
    // are appended together, so right child = left child + 1 by layout.
    for (std::size_t head = 0; head < bfs.size(); ++head) {
      const auto& src = src_nodes[static_cast<std::size_t>(bfs[head])];
      FlatNode node;
      if (src.is_leaf()) {
        node.payload = src.value;
      } else {
        categorical = categorical || src.split.categorical;
        node.feature = src.split.feature |
                       (src.split.categorical ? FlatNode::kCategoricalFlag : 0);
        node.payload = src.split.categorical
                           ? std::bit_cast<double>(src.split.left_mask)
                           : src.split.threshold;
        node.left = static_cast<std::int32_t>(bfs.size());
        bfs.push_back(src.left);
        bfs.push_back(src.right);
      }
      nodes_.push_back(node);
    }
    // Every BFS slot was visited exactly once and every split's left child
    // (and its implicit right sibling) stays inside this tree's node table.
    PWU_ENSURE(bfs.size() == src_nodes.size(),
               "FlatForest::build: BFS covered " << bfs.size() << " of "
                                                 << src_nodes.size()
                                                 << " nodes");
    const std::size_t base = nodes_.size() - src_nodes.size();
    for (std::size_t i = base; i < nodes_.size(); ++i) {
      PWU_ASSERT(nodes_[i].feature < 0 ||
                     static_cast<std::size_t>(nodes_[i].left) + 1 <
                         src_nodes.size(),
                 "FlatForest::build: child index " << nodes_[i].left
                                                   << " out of tree range "
                                                   << src_nodes.size());
    }
    tree_offsets_.push_back(static_cast<std::uint32_t>(base));
    tree_categorical_.push_back(categorical ? 1 : 0);
  }
  tree_offsets_.push_back(static_cast<std::uint32_t>(nodes_.size()));
  PWU_ENSURE(tree_offsets_.back() == nodes_.size() && nodes_.size() == total,
             "FlatForest::build: node table/offset mismatch");
}

void FlatForest::clear() {
  nodes_.clear();
  tree_offsets_.clear();
  tree_categorical_.clear();
}

double FlatForest::predict_one(std::span<const double> row) const {
  const std::size_t num = num_trees();
  if (num == 0) {
    throw std::logic_error("FlatForest::predict_one: empty forest");
  }
  double sum = 0.0;
  for (std::size_t t = 0; t < num; ++t) {
    sum += traverse(nodes_.data() + tree_offsets_[t], row.data());
  }
  return sum / static_cast<double>(num);
}

PredictionStats FlatForest::predict_stats_one(
    std::span<const double> row) const {
  const std::size_t num = num_trees();
  if (num == 0) {
    throw std::logic_error("FlatForest::predict_stats_one: empty forest");
  }
  thread_local std::vector<double> per_tree;
  per_tree.resize(num);
  predict_per_tree(row, per_tree);
  // Two passes (deviation form) to match the reference exactly and avoid
  // sum-of-squares cancellation when trees agree to many digits.
  double sum = 0.0;
  for (double p : per_tree) sum += p;
  const auto b = static_cast<double>(num);
  PredictionStats stats;
  stats.mean = sum / b;
  double sq_dev = 0.0;
  for (double p : per_tree) {
    const double d = p - stats.mean;
    sq_dev += d * d;
  }
  stats.variance = sq_dev / b;
  stats.stddev = std::sqrt(stats.variance);
  return stats;
}

void FlatForest::predict_per_tree(std::span<const double> row,
                                  std::span<double> out) const {
  const std::size_t num = num_trees();
  if (out.size() != num) {
    throw std::invalid_argument("FlatForest::predict_per_tree: size mismatch");
  }
  for (std::size_t t = 0; t < num; ++t) {
    out[t] = traverse(nodes_.data() + tree_offsets_[t], row.data());
  }
}

void FlatForest::predict_per_tree_block(const double* const* rows,
                                        std::size_t n,
                                        std::span<double> out) const {
  const std::size_t num = num_trees();
  if (out.size() != num * n) {
    throw std::invalid_argument(
        "FlatForest::predict_per_tree_block: size mismatch");
  }
  for (std::size_t t = 0; t < num; ++t) {
    const FlatNode* tree = nodes_.data() + tree_offsets_[t];
    double* dst = out.data() + t * n;
    for (std::size_t r = 0; r < n; r += kGroup) {
      const std::size_t g = std::min(kGroup, n - r);
      traverse_group(tree, rows + r, g, dst + r);
    }
  }
}

void FlatForest::stats_block(const FeatureMatrix& rows, std::size_t begin,
                             std::size_t end, std::span<PredictionStats> out,
                             std::vector<double>& scratch) const {
  const std::size_t nb = end - begin;
  const std::size_t num = num_trees();
  PWU_REQUIRE(begin < end && end <= rows.num_rows() && nb <= kRowBlock,
              "FlatForest::stats_block: [" << begin << ", " << end
                                           << ") of " << rows.num_rows());
  scratch.resize(num * nb);
  const double* base = rows.row(begin).data();
  const std::size_t stride = rows.num_cols();
  const simd::FlatTreeKernel kernel = simd::flat_tree_kernel(simd::active_level());
  const double* row_ptrs[kGroup];
  // Tree-major fill: one tree's nodes stay hot while the whole row block
  // passes through it. Numerical-only trees take the dispatched SIMD kernel
  // (bit-exact with traverse_group by construction); trees with categorical
  // splits keep the scalar set-membership walk.
  for (std::size_t t = 0; t < num; ++t) {
    const FlatNode* tree = nodes_.data() + tree_offsets_[t];
    double* dst = scratch.data() + t * nb;
    if (tree_categorical_[t] != 0) {
      for (std::size_t r = 0; r < nb; r += kGroup) {
        const std::size_t g = std::min(kGroup, nb - r);
        for (std::size_t j = 0; j < g; ++j) {
          row_ptrs[j] = rows.row(begin + r + j).data();
        }
        traverse_group(tree, row_ptrs, g, dst + r);
      }
    } else {
      kernel(tree, base, stride, nb, dst);
    }
  }
  const auto b = static_cast<double>(num);
  for (std::size_t r = 0; r < nb; ++r) {
    double sum = 0.0;
    for (std::size_t t = 0; t < num; ++t) sum += scratch[t * nb + r];
    PredictionStats stats;
    stats.mean = sum / b;
    double sq_dev = 0.0;
    for (std::size_t t = 0; t < num; ++t) {
      const double d = scratch[t * nb + r] - stats.mean;
      sq_dev += d * d;
    }
    stats.variance = sq_dev / b;
    stats.stddev = std::sqrt(stats.variance);
    out[begin + r] = stats;
  }
}

void FlatForest::mean_block(const FeatureMatrix& rows, std::size_t begin,
                            std::size_t end, std::span<double> out,
                            std::vector<double>& scratch) const {
  const std::size_t nb = end - begin;
  const std::size_t num = num_trees();
  PWU_REQUIRE(begin < end && end <= rows.num_rows() && nb <= kRowBlock,
              "FlatForest::mean_block: [" << begin << ", " << end << ") of "
                                          << rows.num_rows());
  scratch.assign(nb, 0.0);
  const double* base = rows.row(begin).data();
  const std::size_t stride = rows.num_cols();
  const simd::FlatTreeKernel kernel = simd::flat_tree_kernel(simd::active_level());
  const double* row_ptrs[kGroup];
  double leaf[kRowBlock];
  for (std::size_t t = 0; t < num; ++t) {
    const FlatNode* tree = nodes_.data() + tree_offsets_[t];
    if (tree_categorical_[t] != 0) {
      for (std::size_t r = 0; r < nb; r += kGroup) {
        const std::size_t g = std::min(kGroup, nb - r);
        for (std::size_t j = 0; j < g; ++j) {
          row_ptrs[j] = rows.row(begin + r + j).data();
        }
        traverse_group(tree, row_ptrs, g, leaf + r);
      }
    } else {
      kernel(tree, base, stride, nb, leaf);
    }
    for (std::size_t r = 0; r < nb; ++r) scratch[r] += leaf[r];
  }
  const auto b = static_cast<double>(num);
  for (std::size_t r = 0; r < nb; ++r) out[begin + r] = scratch[r] / b;
}

void FlatForest::predict_stats(const FeatureMatrix& rows,
                               std::span<PredictionStats> out,
                               util::ThreadPool* pool) const {
  const std::size_t n = rows.num_rows();
  if (out.size() != n) {
    throw std::invalid_argument("FlatForest::predict_stats: size mismatch");
  }
  if (empty()) {
    throw std::logic_error("FlatForest::predict_stats: empty forest");
  }
  if (n == 0) return;
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  auto run_block = [&](std::size_t block, std::vector<double>& scratch) {
    const std::size_t begin = block * kRowBlock;
    const std::size_t end = std::min(begin + kRowBlock, n);
    stats_block(rows, begin, end, out, scratch);
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 256) {
    pool->parallel_for(0, blocks, [&](std::size_t block) {
      thread_local std::vector<double> scratch;
      run_block(block, scratch);
    });
  } else {
    std::vector<double> scratch;
    for (std::size_t block = 0; block < blocks; ++block) {
      run_block(block, scratch);
    }
  }
}

void FlatForest::predict_mean(const FeatureMatrix& rows, std::span<double> out,
                              util::ThreadPool* pool) const {
  const std::size_t n = rows.num_rows();
  if (out.size() != n) {
    throw std::invalid_argument("FlatForest::predict_mean: size mismatch");
  }
  if (empty()) {
    throw std::logic_error("FlatForest::predict_mean: empty forest");
  }
  if (n == 0) return;
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  auto run_block = [&](std::size_t block, std::vector<double>& scratch) {
    const std::size_t begin = block * kRowBlock;
    const std::size_t end = std::min(begin + kRowBlock, n);
    mean_block(rows, begin, end, out, scratch);
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 256) {
    pool->parallel_for(0, blocks, [&](std::size_t block) {
      thread_local std::vector<double> scratch;
      run_block(block, scratch);
    });
  } else {
    std::vector<double> scratch;
    for (std::size_t block = 0; block < blocks; ++block) {
      run_block(block, scratch);
    }
  }
}

}  // namespace pwu::rf
