// Bagged ensemble of regression trees with predictive uncertainty.
//
// Following Hutter et al. ("Algorithm runtime prediction: Methods &
// evaluation", AIJ 2014) — the paper's reference [14] — the forest's point
// prediction is the mean over trees and the predictive uncertainty is the
// spread (variance) of the per-tree predictions. That uncertainty drives
// every sampling strategy in core/.
//
// After fit/load the ensemble is compiled into a FlatForest — a contiguous
// breadth-first node array — and all prediction entry points route through
// it. The original node tables are kept for serialization and structural
// queries; predict_stats_reference() walks them directly and exists to pin
// the flat engine's bit-exactness in tests.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "rf/dataset.hpp"
#include "rf/decision_tree.hpp"
#include "rf/feature_matrix.hpp"
#include "rf/flat_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace pwu::rf {

struct ForestConfig {
  std::size_t num_trees = 50;
  TreeConfig tree;
  /// Bootstrap resampling (bagging). When false every tree sees the full
  /// training set and only the feature subspace differs.
  bool bootstrap = true;
  /// Track per-sample out-of-bag predictions during fit.
  bool compute_oob = false;
};

class RandomForest {
 public:
  /// Fits `config.num_trees` trees. Tree construction is deterministic given
  /// `rng`'s state: per-tree child streams are forked up front, so results
  /// are identical whether trees are built serially or on `pool`'s workers.
  /// `cancel` is polled between trees; a requested cancellation throws
  /// util::Cancelled and leaves the forest in an unfitted (discardable)
  /// state — callers that need the previous model must fit a fresh instance.
  void fit(const Dataset& data, const ForestConfig& config, util::Rng& rng,
           util::ThreadPool* pool = nullptr,
           const util::CancelToken* cancel = nullptr);

  bool fitted() const { return !trees_.empty(); }
  std::size_t num_trees() const { return trees_.size(); }
  const ForestConfig& config() const { return config_; }

  /// Ensemble mean prediction.
  double predict(std::span<const double> row) const;

  /// Mean and across-tree spread for one row.
  PredictionStats predict_stats(std::span<const double> row) const;

  /// predict_stats computed by walking the original tree node tables — the
  /// slow reference implementation the flat engine must match bit-for-bit.
  PredictionStats predict_stats_reference(std::span<const double> row) const;

  /// Batched predict_stats over a contiguous row matrix, optionally
  /// parallel. Bit-identical to calling predict_stats row by row.
  std::vector<PredictionStats> predict_stats_batch(
      const FeatureMatrix& rows, util::ThreadPool* pool = nullptr) const;

  /// The compiled evaluation layout (valid whenever fitted()).
  const FlatForest& flat() const { return flat_; }

  /// Out-of-bag RMSE (requires compute_oob at fit time; NaN when no sample
  /// ended up out of bag, e.g. a 1-tree forest without bootstrap).
  double oob_rmse() const;

  /// Mean-squared-error increase per feature when that feature's column is
  /// permuted in `reference` — a model-agnostic importance measure.
  std::vector<double> permutation_importance(
      const Dataset& reference, util::Rng& rng,
      util::ThreadPool* pool = nullptr) const;

  /// Structural statistics (for tests/diagnostics).
  std::size_t total_nodes() const;
  std::size_t max_depth() const;

  /// Resident heap footprint: original node tables plus the flat layout.
  std::size_t memory_bytes() const;

  /// Serializes the fitted ensemble as text (trees + the structural bits of
  /// the config). Predictions round-trip exactly through save/load; OOB
  /// state is not persisted.
  void save(std::ostream& os) const;
  void load(std::istream& is);
  /// File-path convenience wrappers; throw std::runtime_error on IO errors.
  void save_file(const std::string& path) const;
  static RandomForest load_file(const std::string& path);

 private:
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
  ForestConfig config_;
  double oob_rmse_ = 0.0;
  bool has_oob_ = false;
};

}  // namespace pwu::rf
