// Name -> workload factory, covering the paper's full benchmark set.

#pragma once

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace pwu::workloads {

/// The 12 SPAPT kernels (paper Section III-A).
std::vector<std::string> kernel_names();

/// The remaining 6 SPAPT problems (the paper used 12 of 18) — an extended
/// set beyond the paper's evaluation.
std::vector<std::string> extended_kernel_names();

/// The two parallel applications: kripke, hypre.
std::vector<std::string> application_names();

/// Kernels followed by applications (the paper's benchmark set).
std::vector<std::string> all_names();

/// Everything: paper kernels + extended kernels + applications.
std::vector<std::string> full_suite_names();

/// Constructs the named workload; throws std::invalid_argument for unknown
/// names.
WorkloadPtr make_workload(const std::string& name);

}  // namespace pwu::workloads
