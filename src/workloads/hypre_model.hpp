// Performance simulator for hypre's new_ij driver solving a 27-point 3D
// Laplacian, over the paper's Table III space (solver id, coarsening,
// smoother type, process count) on Platform B.

#pragma once

#include "workloads/workload.hpp"

namespace pwu::workloads {

WorkloadPtr make_hypre();

}  // namespace pwu::workloads
