// Kripke (LLNL transport proxy) performance model.
//
// Fixed global problem (per the mini-app defaults): 64 energy groups, 96
// angular directions, 32^3 spatial zones, 10 solver iterations. The tunables
// (Table II) control how that work is organized:
//
//   layout   — the nesting order of the Direction/Group/Zone loops in the
//              sweep kernel. Zone-innermost layouts (DGZ, GDZ) stream zones
//              unit-stride and vectorize; zone-outermost layouts (ZDG, ZGD)
//              thrash the zone dimension through cache.
//   gset     — number of group sets:   work quantum = groups/gset.
//   dset     — number of direction sets: quantum = directions/dset.
//              More, smaller sets pipeline better across the process grid
//              but pay per-set kernel-launch/bookkeeping overhead, and a
//              dset must divide the 8 octants' directions evenly to avoid
//              padding waste.
//   pmethod  — sweep: the KBA wavefront sweep (pipeline fill/drain cost,
//              converges in the nominal iteration count);
//              bj: block-Jacobi (no pipeline dependency, but needs ~1.8x
//              the iterations to converge).
//   #process — MPI ranks arranged in a 2D KBA grid; compute scales down,
//              communication scales up.

#include "workloads/kripke_model.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "sim/cache_model.hpp"
#include "sim/network_model.hpp"
#include "sim/platform.hpp"
#include "space/parameter.hpp"

namespace pwu::workloads {

namespace {

constexpr double kGroups = 64.0;
constexpr double kDirections = 96.0;
constexpr double kZonesPerDim = 32.0;
constexpr double kIterations = 10.0;
// Flops per (zone, direction, group) element per sweep: LTimes + scattering
// + sweep update.
constexpr double kFlopsPerElement = 60.0;

class KripkeModel final : public Workload {
 public:
  KripkeModel()
      : name_("kripke"),
        platform_(sim::platform_b()),
        cache_(platform_),
        network_(platform_) {
    layout_ = space_.add(space::Parameter::categorical(
        "layout", {"DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"}));
    gset_ = space_.add(space::Parameter::ordinal(
        "gset", {1, 2, 4, 8, 16, 32, 64, 128}));
    dset_ = space_.add(space::Parameter::ordinal("dset", {8, 16, 32}));
    pmethod_ =
        space_.add(space::Parameter::categorical("pmethod", {"sweep", "bj"}));
    procs_ = space_.add(space::Parameter::ordinal(
        "nprocs", {1, 2, 4, 8, 16, 32, 64, 128}));
    // Applications are measured "several times" (paper III-B); network
    // jitter is the dominant noise source.
    noise_.lognormal_sigma = 0.04;
    noise_.spike_probability = 0.015;
    noise_.spike_scale = 1.5;
  }

  const std::string& name() const override { return name_; }
  const space::ParameterSpace& space() const override { return space_; }
  const sim::NoiseModel& noise() const override { return noise_; }

  double base_time(const space::Configuration& c) const override {
    const auto layout = static_cast<std::size_t>(c.level(layout_));
    const double gset = space_.param(gset_).numeric_value(c.level(gset_));
    const double dset = space_.param(dset_).numeric_value(c.level(dset_));
    const bool sweep = c.level(pmethod_) == 0;
    const double procs = space_.param(procs_).numeric_value(c.level(procs_));

    const double zones = kZonesPerDim * kZonesPerDim * kZonesPerDim;
    const double total_flops =
        zones * kDirections * kGroups * kFlopsPerElement;

    // --- Layout factor: cache behaviour of the sweep kernel's loop nest.
    // Order: DGZ, DZG, GDZ, GZD, ZDG, ZGD. Zone-innermost is best.
    static constexpr double kLayoutFactor[6] = {1.00, 1.22, 1.04, 1.28,
                                                1.45, 1.52};
    double compute_factor = kLayoutFactor[layout];

    // --- Set granularity. Work quantum per sweep task:
    const double groups_per_set = kGroups / std::min(gset, kGroups);
    const double dirs_per_set = kDirections / std::min(dset, kDirections);
    // Per-set overhead (kernel launch, boundary bookkeeping): more sets =
    // more overhead.
    const double num_sets = std::max(1.0, kGroups / groups_per_set) *
                            std::max(1.0, kDirections / dirs_per_set);
    const double set_overhead = 1.0 + 0.004 * num_sets;
    // Cache: a set's working set is zones_slab * dirs_per_set *
    // groups_per_set unknowns; sets that fit L3 run faster. Zone-innermost
    // layouts blunt this sensitivity.
    const double zones_per_rank = zones / std::max(procs, 1.0);
    const double set_ws =
        8.0 * std::cbrt(zones_per_rank) * std::cbrt(zones_per_rank) *
        dirs_per_set * groups_per_set;
    const double locality_sensitivity =
        (layout >= 4) ? 1.0 : 0.55;  // zone-outermost suffers more
    const double cache_factor =
        1.0 + locality_sensitivity *
                  (cache_.tiling_penalty(set_ws, 2.0) - 1.0);

    // gset=128 exceeds the 64 groups: degenerate sets waste padding.
    const double padding = gset > kGroups ? 1.15 : 1.0;

    // Per-rank compute seconds per iteration.
    const double rank_flops = total_flops / std::max(procs, 1.0);
    const double per_iter_compute =
        platform_.scalar_flop_seconds(rank_flops / 2.0)  // SIMD-ish factor 2
        * compute_factor * set_overhead * cache_factor * padding;

    // --- Communication per iteration.
    const auto p = static_cast<std::size_t>(procs);
    const auto px = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::sqrt(procs))));
    const std::size_t py = std::max<std::size_t>(1, p / px);
    // Face size: zone face * angles/groups of one set quantum.
    const double face_bytes = 8.0 * std::cbrt(zones_per_rank) *
                              std::cbrt(zones_per_rank) * dirs_per_set *
                              groups_per_set / 8.0;
    double per_iter_comm = 0.0;
    double iterations = kIterations;
    if (sweep) {
      // KBA: 8 octant sweeps, each paying a pipeline fill across the grid;
      // smaller set quanta (more sets) overlap fill with compute.
      const double pipeline =
          network_.sweep_pipeline_seconds(face_bytes, px, py) * 8.0;
      const double overlap = 1.0 / std::sqrt(num_sets);
      per_iter_comm = pipeline * overlap +
                      network_.allreduce_seconds(8.0 * kGroups, p);
    } else {
      // Block-Jacobi: neighbour exchange only, but slower convergence.
      per_iter_comm = network_.halo_exchange_seconds(face_bytes) +
                      network_.allreduce_seconds(8.0 * kGroups, p);
      iterations *= 1.8;
    }

    // Startup: MPI init + data structure setup grows mildly with p.
    const double startup = 0.3 + 0.01 * std::log2(std::max(procs, 1.0) + 1.0);

    return startup + iterations * (per_iter_compute + per_iter_comm);
  }

 private:
  std::string name_;
  space::ParameterSpace space_;
  sim::Platform platform_;
  sim::CacheModel cache_;
  sim::NetworkModel network_;
  sim::NoiseModel noise_;
  std::size_t layout_ = 0, gset_ = 0, dset_ = 0, pmethod_ = 0, procs_ = 0;
};

}  // namespace

WorkloadPtr make_kripke() { return std::make_unique<KripkeModel>(); }

}  // namespace pwu::workloads
