// The black-box tuning target: a parameter space plus a config -> time map.
//
// Active learning only ever observes `evaluate` (one noisy run) or `measure`
// (the paper's n-repetition averaged protocol). `base_time` exposes the
// noiseless model for tests and oracle analyses; a real deployment would not
// have it.

#pragma once

#include <memory>
#include <string>

#include "sim/noise.hpp"
#include "space/configuration.hpp"
#include "space/parameter_space.hpp"
#include "util/rng.hpp"

namespace pwu::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;
  virtual const space::ParameterSpace& space() const = 0;

  /// Noiseless model time in seconds (strictly positive).
  virtual double base_time(const space::Configuration& config) const = 0;

  /// Measurement noise model; subclasses may override.
  virtual const sim::NoiseModel& noise() const;

  /// One noisy run of the program under `config`.
  double evaluate(const space::Configuration& config, util::Rng& rng) const;

  /// Mean of `repetitions` noisy runs — the paper's measurement protocol
  /// (35 repetitions for kernels).
  double measure(const space::Configuration& config, util::Rng& rng,
                 int repetitions) const;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace pwu::workloads
