#include "workloads/synthetic.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "space/parameter.hpp"
#include "util/contracts.hpp"

namespace pwu::workloads {

namespace {

class CustomWorkload final : public Workload {
 public:
  CustomWorkload(std::string name, space::ParameterSpace space,
                 std::function<double(const space::Configuration&)> base_time,
                 sim::NoiseModel noise_model)
      : name_(std::move(name)),
        space_(std::move(space)),
        base_time_(std::move(base_time)),
        noise_(noise_model) {}

  const std::string& name() const override { return name_; }
  const space::ParameterSpace& space() const override { return space_; }
  const sim::NoiseModel& noise() const override { return noise_; }

  double base_time(const space::Configuration& config) const override {
    return base_time_(config);
  }

 private:
  std::string name_;
  space::ParameterSpace space_;
  std::function<double(const space::Configuration&)> base_time_;
  sim::NoiseModel noise_;
};

}  // namespace

WorkloadPtr make_custom(
    std::string name, space::ParameterSpace space,
    std::function<double(const space::Configuration&)> base_time,
    sim::NoiseModel noise) {
  return std::make_unique<CustomWorkload>(std::move(name), std::move(space),
                                          std::move(base_time), noise);
}

namespace {

/// Owns the wrapped base workload and applies the platform warp.
class PlatformVariant final : public Workload {
 public:
  PlatformVariant(WorkloadPtr base, double scale, double gamma,
                  double perturbation, std::uint64_t seed)
      : base_(std::move(base)),
        name_(base_->name() + "-variant"),
        scale_(scale),
        gamma_(gamma),
        perturbation_(perturbation),
        seed_(seed) {
    if (scale <= 0.0 || gamma <= 0.0) {
      throw std::invalid_argument(
          "make_platform_variant: scale and gamma must be positive");
    }
    if (perturbation < 0.0 || perturbation >= 1.0) {
      throw std::invalid_argument(
          "make_platform_variant: perturbation must be in [0, 1)");
    }
  }

  const std::string& name() const override { return name_; }
  const space::ParameterSpace& space() const override {
    return base_->space();
  }
  const sim::NoiseModel& noise() const override { return base_->noise(); }

  double base_time(const space::Configuration& config) const override {
    const double t = base_->base_time(config);
    // Deterministic config-specific deviation in [-1, 1]: one draw from an
    // Rng seeded by (seed, config hash).
    util::Rng rng PWU_RNG_STREAM(config_noise)(seed_ ^ config.hash());
    const double z = 2.0 * rng.uniform() - 1.0;
    return scale_ * std::pow(t, gamma_) * (1.0 + perturbation_ * z);
  }

 private:
  WorkloadPtr base_;
  std::string name_;
  double scale_, gamma_, perturbation_;
  std::uint64_t seed_;
};

}  // namespace

WorkloadPtr make_platform_variant(WorkloadPtr base, double scale,
                                  double gamma, double perturbation,
                                  std::uint64_t seed) {
  return std::make_unique<PlatformVariant>(std::move(base), scale, gamma,
                                           perturbation, seed);
}

WorkloadPtr make_quadratic_bowl(std::size_t dims, std::size_t levels,
                                double base_seconds, bool noisy) {
  space::ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add(space::Parameter::int_range("x" + std::to_string(d + 1), 0,
                                          static_cast<long>(levels) - 1));
  }
  const double center = 0.5 * static_cast<double>(levels - 1);
  const auto scale = static_cast<double>(levels) * static_cast<double>(levels);
  auto time_fn = [dims, center, scale,
                  base_seconds](const space::Configuration& c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double x = static_cast<double>(c.level(d)) - center;
      // Increasing weights make later dimensions matter more, so feature
      // importance has a known ordering for the tests.
      acc += (1.0 + static_cast<double>(d)) * x * x / scale;
    }
    return base_seconds * (1.0 + acc);
  };
  sim::NoiseModel noise = sim::NoiseModel::none();
  if (noisy) {
    noise.lognormal_sigma = 0.05;
    noise.spike_probability = 0.01;
    noise.spike_scale = 1.5;
  }
  return make_custom("quadratic_bowl", std::move(space), std::move(time_fn),
                     noise);
}

WorkloadPtr make_mixed_modes(std::size_t modes, std::size_t dims,
                             std::size_t levels, double base_seconds) {
  space::ParameterSpace space;
  std::vector<std::string> mode_labels;
  mode_labels.reserve(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    mode_labels.push_back("mode" + std::to_string(m));
  }
  space.add(space::Parameter::categorical("mode", std::move(mode_labels)));
  for (std::size_t d = 0; d < dims; ++d) {
    space.add(space::Parameter::int_range("x" + std::to_string(d + 1), 0,
                                          static_cast<long>(levels) - 1));
  }
  const auto span = static_cast<double>(levels - 1);
  auto time_fn = [dims, span, base_seconds](const space::Configuration& c) {
    const auto mode = static_cast<double>(c.level(0));
    // Golden-ratio scrambling makes the per-mode bowl center and base cost
    // deliberately non-monotone in the level index: the index carries no
    // ordinal information, so a model must treat the feature as genuinely
    // categorical (set-membership) to predict well.
    constexpr double kGolden = 0.6180339887498949;
    const double center =
        span * std::fmod(0.37 + mode * kGolden, 1.0);
    const double mode_cost =
        0.5 + 2.0 * std::fmod(0.11 + mode * 2.0 * kGolden, 1.0);
    double acc = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double x = static_cast<double>(c.level(d + 1)) - center;
      acc += x * x / (span * span);
    }
    return base_seconds * (mode_cost + acc);
  };
  return make_custom("mixed_modes", std::move(space), std::move(time_fn));
}

}  // namespace pwu::workloads
