#include "workloads/workload.hpp"

#include <stdexcept>

namespace pwu::workloads {

const sim::NoiseModel& Workload::noise() const {
  static const sim::NoiseModel default_noise{};
  return default_noise;
}

double Workload::evaluate(const space::Configuration& config,
                          util::Rng& rng) const {
  const double t = base_time(config);
  if (!(t > 0.0)) {
    throw std::logic_error("Workload '" + name() +
                           "': non-positive base time");
  }
  return noise().apply(t, rng);
}

double Workload::measure(const space::Configuration& config, util::Rng& rng,
                         int repetitions) const {
  if (repetitions < 1) {
    throw std::invalid_argument("Workload::measure: repetitions must be >= 1");
  }
  double sum = 0.0;
  for (int r = 0; r < repetitions; ++r) sum += evaluate(config, rng);
  return sum / repetitions;
}

}  // namespace pwu::workloads
