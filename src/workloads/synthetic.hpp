// Closed-form synthetic workloads with known structure, used by the unit
// and property tests (and handy as minimal examples of the Workload API).

#pragma once

#include <functional>
#include <string>

#include "workloads/workload.hpp"

namespace pwu::workloads {

/// Separable quadratic bowl over `dims` integer parameters in [0, levels):
/// time = base * (1 + sum_i w_i * (x_i - c_i)^2 / levels^2), noiseless by
/// default. The global optimum sits at the center of every dimension.
WorkloadPtr make_quadratic_bowl(std::size_t dims, std::size_t levels,
                                double base_seconds = 0.1,
                                bool noisy = false);

/// Mixed-type workload: one categorical parameter picks one of `modes`
/// distinct quadratic bowls over the remaining numeric parameters —
/// exercises categorical splits in the forest.
WorkloadPtr make_mixed_modes(std::size_t modes, std::size_t dims,
                             std::size_t levels,
                             double base_seconds = 0.1);

/// Fully custom workload from a user-supplied space and time function;
/// also the simplest way for library users to wrap their own black box.
WorkloadPtr make_custom(
    std::string name, space::ParameterSpace space,
    std::function<double(const space::Configuration&)> base_time,
    sim::NoiseModel noise = sim::NoiseModel::none());

/// "Same kernel, different platform": wraps a base workload with a
/// monotone time warp plus a small config-dependent perturbation,
///   t' = scale * t^gamma * (1 + perturbation * z(config)),  z in [-1, 1]
/// deterministic per config. The warped surface is strongly rank-correlated
/// with the original but not identical — the regime in which transferring a
/// source model (paper Section VI future work) should help but cannot
/// replace target measurements. Shares the base workload's space.
WorkloadPtr make_platform_variant(WorkloadPtr base, double scale = 1.3,
                                  double gamma = 0.92,
                                  double perturbation = 0.15,
                                  std::uint64_t seed = 1);

}  // namespace pwu::workloads
