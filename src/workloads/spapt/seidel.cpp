// SEIDEL: Gauss-Seidel 2D 9-point stencil with in-place updates. The
// loop-carried dependence (each point reads already-updated neighbours)
// forbids straightforward vectorization and makes wavefront skewing the
// main transformation: the skew tile trades parallelism in the wavefront
// against locality along the diagonal. 11 parameters.

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class SeidelKernel final : public SpaptKernel {
 public:
  SeidelKernel() : SpaptKernel("seidel", 2500) {
    tiles_ = add_tile_params(5, "T");  // skew i/j, time tile, 2nd level i/j
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(2, "RT");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double timesteps = 20.0;
    const double flops = 9.0 * n * n * timesteps;

    const double skew_i = value(c, tiles_[0]);
    const double skew_j = value(c, tiles_[1]);
    const double time_tile = value(c, tiles_[2]);
    const double inner =
        std::min(value(c, tiles_[3]) * value(c, tiles_[4]), skew_i * skew_j);

    // Wavefront working set: the skewed tile itself plus 3 halo rows per
    // wavefront step, divided by the temporal reuse that time tiling buys
    // (saturating around 4 steps of lookahead).
    const double reuse = std::min(std::max(time_tile, 1.0), 4.0);
    const double tile_points =
        std::max(std::min(inner, skew_i * skew_j), skew_i + skew_j);
    const double ws = 8.0 * 3.0 * tile_points / reuse;

    double t = seconds_for_flops(flops);
    t *= tile_time_factor(ws, /*bytes_per_flop=*/2.7);
    // Skewed index arithmetic and ragged wavefront edges.
    t *= 1.0 + 0.10 * (skew_i > 1.0 ? 1.0 : 0.0) +
         0.5 * std::min(skew_i, skew_j) / n;

    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/9.0);
    // Third unroll factor: wavefront strip-mining amortization.
    t *= 1.0 + 0.12 / std::max(value(c, unrolls_[2]), 1.0) - 0.12;
    t *= regtile_time_factor(value(c, regtiles_[0]) * value(c, regtiles_[1]),
                             /*reuse=*/0.8);
    // The dependence chain caps SIMD at the wavefront width; only partial
    // vectorization of the neighbour sums is possible.
    t *= vector_time_factor(flag(c, vector_), 0.35, 0.5);

    return 1e-3 + t;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t vector_ = 0;
};

}  // namespace

WorkloadPtr make_seidel() { return std::make_unique<SeidelKernel>(); }

}  // namespace pwu::workloads::spapt
