// Shared machinery for the 12 SPAPT kernel simulators.
//
// SPAPT (Balaprakash, Wild & Norris 2012) defines, for each computation
// kernel, a serial C implementation, a problem size, and a set of Orio code
// transformation parameters: per-loop cache tile sizes, per-loop unroll-jam
// factors, register tile sizes, scalar replacement and vectorization flags.
// Here each kernel is an analytic performance simulator over exactly that
// kind of space (see DESIGN.md for the substitution rationale); the shape of
// the config -> time surface — cache staircases from tiling, U-curves from
// unroll-jam register pressure, discrete jumps from flags, strong parameter
// interactions, a small high-performance region and a long slow tail — is
// what the active-learning method is exercised against.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/cache_model.hpp"
#include "sim/noise.hpp"
#include "sim/platform.hpp"
#include "workloads/workload.hpp"

namespace pwu::workloads::spapt {

/// Tile-size levels used by every SPAPT tiling parameter (paper Table I).
const std::vector<double>& tile_levels();

/// Register-tile levels (paper Table I).
const std::vector<double>& regtile_levels();

/// Maximum unroll-jam factor (paper Table I: 1..31).
constexpr long kMaxUnroll = 31;

/// Base class: owns the space, the platform (Table IV Platform A), the cache
/// model and the kernel noise model, and provides the shared cost-model
/// primitives that kernel-specific `base_time` implementations compose.
class SpaptKernel : public Workload {
 public:
  const std::string& name() const override { return name_; }
  const space::ParameterSpace& space() const override { return space_; }
  const sim::NoiseModel& noise() const override { return noise_; }

  std::size_t problem_size() const { return n_; }

 protected:
  SpaptKernel(std::string name, std::size_t n);

  // ---- space construction (returns the parameter indices) ----
  std::vector<std::size_t> add_tile_params(std::size_t count,
                                           const std::string& prefix);
  std::vector<std::size_t> add_unroll_params(std::size_t count,
                                             const std::string& prefix);
  std::vector<std::size_t> add_regtile_params(std::size_t count,
                                              const std::string& prefix);
  std::size_t add_flag(const std::string& flag_name);

  // ---- config decoding ----
  double value(const space::Configuration& config, std::size_t param) const;
  bool flag(const space::Configuration& config, std::size_t param) const;
  /// Product of the numeric values of the given parameters.
  double product(const space::Configuration& config,
                 const std::vector<std::size_t>& params) const;

  // ---- shared cost-model primitives (multiplicative time factors) ----

  /// Seconds for `flops` scalar FLOPs on one Platform A core.
  double seconds_for_flops(double flops) const;

  /// Cache behaviour of a tiled loop nest with the given per-iteration
  /// working set. >= 1; 1 means L1-resident.
  double tile_time_factor(double working_set_bytes, double bytes_per_flop) const;

  /// Loop-overhead vs register-spill U-curve of unroll-jam.
  /// `unroll_product` is the product of the jammed loops' factors;
  /// `register_demand` the live values required per unrolled iteration.
  double unroll_time_factor(double unroll_product, double register_demand) const;

  /// Register tiling: improves operand reuse up to the register file size,
  /// then spills. `reuse` in [0,1] scales the attainable benefit.
  double regtile_time_factor(double regtile_product, double reuse) const;

  /// Vectorization: Amdahl over the vectorizable fraction with an
  /// effectiveness loss for strided access. Returns <= 1 when enabled.
  double vector_time_factor(bool enabled, double vectorizable_fraction,
                            double stride_penalty) const;

  /// Scalar replacement: saves redundant loads proportional to reuse
  /// intensity, at a slight register-pressure cost when reuse is low.
  double scalar_replace_factor(bool enabled, double reuse_intensity) const;

  const sim::Platform& platform() const { return platform_; }
  const sim::CacheModel& cache() const { return cache_; }

  space::ParameterSpace space_;

 private:
  std::string name_;
  std::size_t n_;
  sim::Platform platform_;
  sim::CacheModel cache_;
  sim::NoiseModel noise_;
};

// ---- the paper's 12 kernels (factories) ----
WorkloadPtr make_adi();          // 2D stencil, alternating-direction implicit
WorkloadPtr make_atax();         // A^T * A * x
WorkloadPtr make_bicg();         // BiCG sub-kernel: q = A p, s = A^T r
WorkloadPtr make_correlation();  // correlation matrix computation
WorkloadPtr make_dgemv3();       // three chained dense mat-vec products
WorkloadPtr make_gemver();       // vector mult. + matrix-vector products
WorkloadPtr make_gesummv();      // scalar, vector & matrix multiplication
WorkloadPtr make_jacobi();       // 1D Jacobi 3-point stencil sweep
WorkloadPtr make_lu();           // LU decomposition
WorkloadPtr make_mm();           // dense matrix-matrix multiply
WorkloadPtr make_mvt();          // matrix-vector product & transpose
WorkloadPtr make_seidel();       // Gauss-Seidel 2D 9-point stencil

// ---- the remaining 6 SPAPT problems (the paper used 12 of 18; these
// complete the suite as an extended set) ----
WorkloadPtr make_trmm();         // triangular matrix multiply
WorkloadPtr make_syrk();         // symmetric rank-k update
WorkloadPtr make_syr2k();        // symmetric rank-2k update
WorkloadPtr make_fdtd();         // 2D finite-difference time domain
WorkloadPtr make_stencil3d();    // 7-point 3D Jacobi stencil
WorkloadPtr make_covariance();   // covariance matrix computation

}  // namespace pwu::workloads::spapt
