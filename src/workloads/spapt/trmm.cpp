// TRMM: triangular matrix-matrix multiply B = A B with lower-triangular A.
// Half the flops of a square GEMM but the same tiling structure over a
// ragged iteration space; the triangular boundary makes large i/k tiles
// progressively wasteful, like LU's trailing updates but without the panel
// phase. Part of the extended SPAPT set (the paper used 12 of 18 problems;
// this is one of the remaining six). 14 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class TrmmKernel final : public SpaptKernel {
 public:
  TrmmKernel() : SpaptKernel("trmm", 950) {
    tiles_ = add_tile_params(6, "T");
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(3, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = n * n * n;  // triangle: n^3/2 MACs x 2

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    const double tk = value(c, tiles_[2]);
    const double inner = std::min(value(c, tiles_[3]) * value(c, tiles_[4]),
                                  ti * tj);
    const double ws = 8.0 * (ti * tk + tk * tj + ti * tj + inner);

    double t = seconds_for_flops(flops);
    const double matrix_bytes = 8.0 * n * n;
    const double restream =
        std::clamp(1.0 / ti + 1.0 / tj + 2.0 / tk, 0.0, 1.0);
    const double bytes_per_flop =
        std::clamp(4.0 * (1.0 / ti + 1.0 / tj + 2.0 / tk), 0.25, 16.0);
    t *= tile_time_factor(std::max(ws, matrix_bytes * restream),
                          bytes_per_flop);

    // Triangular raggedness: tiles straddling the diagonal waste ~half
    // their work; the waste share grows with the tile edge.
    t *= 1.0 + 0.4 * std::max(ti, tk) / n;

    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/3.0);
    // Diagonal-adjacent cleanup loop keeps its own unroll factor.
    t *= 1.0 + 0.10 / std::max(value(c, unrolls_[2]), 1.0) - 0.10;
    t *= regtile_time_factor(value(c, regtiles_[0]) * value(c, regtiles_[1]),
                             /*reuse=*/0.9);
    t *= regtile_time_factor(value(c, regtiles_[2]), /*reuse=*/0.3);
    // In-place update (B is both input and output) halves the vector win.
    t *= vector_time_factor(flag(c, vector_), 0.6,
                            tj >= 32.0 ? 0.08 : 0.45);
    t *= scalar_replace_factor(flag(c, scalar_), 0.85);

    // Sixth tile: diagonal-block special-casing; only moderate sizes help.
    const double diag_tile = value(c, tiles_[5]);
    if (diag_tile >= 16.0 && diag_tile <= 128.0) t *= 0.95;

    return 1.2e-3 + 0.5 * t;  // triangle = half of the dense product
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_trmm() { return std::make_unique<TrmmKernel>(); }

}  // namespace pwu::workloads::spapt
