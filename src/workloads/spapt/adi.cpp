// ADI (alternating-direction implicit) 2D stencil kernel (paper Listing 1,
// Table I): two dependent sweeps over an N x N grid of three arrays
// (X, A, B). The row sweep streams unit-stride; the column sweep walks
// stride-N, so its locality depends much more strongly on tiling and it
// barely vectorizes. Parameter layout follows Table I: 8 tiles, 4
// unroll-jam factors, 4 register tiles, 2 scalar-replace flags, 2 vector
// flags (20 parameters, |space| ~ 10^15).

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class AdiKernel final : public SpaptKernel {
 public:
  AdiKernel() : SpaptKernel("adi", 6000) {
    // Two sweeps x (outer tile, inner tile) x 2 tiling levels.
    tiles_ = add_tile_params(8, "T");
    unrolls_ = add_unroll_params(4, "U");
    regtiles_ = add_regtile_params(4, "RT");
    scalar_row_ = add_flag("SCREP_row");
    scalar_col_ = add_flag("SCREP_col");
    vector_row_ = add_flag("VEC_row");
    vector_col_ = add_flag("VEC_col");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    // Each statement pair does sub/mul/div twice over the grid: ~10 flops
    // per point per sweep; the divide makes each "flop" ~1.5x heavier.
    const double sweep_flops = 10.0 * n * n * 1.5;

    // --- Row sweep (unit stride): tiles 0..3, unrolls 0..1. ---
    // Working set of a (t0 x t1) tile over 3 arrays of doubles; the
    // second-level tiles (t2, t3) cap the effective block the innermost
    // loops keep live.
    const double row_t0 = value(c, tiles_[0]);
    const double row_t1 = value(c, tiles_[1]);
    const double row_inner =
        std::min(value(c, tiles_[2]) * value(c, tiles_[3]), row_t0 * row_t1);
    const double row_ws = 3.0 * 8.0 * std::max(row_inner, row_t1);
    double row = seconds_for_flops(sweep_flops);
    row *= tile_time_factor(row_ws, /*bytes_per_flop=*/4.0);
    row *= unroll_time_factor(
        value(c, unrolls_[0]) * value(c, unrolls_[1]), /*register_demand=*/5.0);
    row *= regtile_time_factor(
        value(c, regtiles_[0]) * value(c, regtiles_[1]), /*reuse=*/0.7);
    // Vectorization needs a long enough unit-stride inner trip count.
    const double row_stride_penalty = row_t1 < 32.0 ? 0.5 : 0.1;
    row *= vector_time_factor(flag(c, vector_row_), 0.75, row_stride_penalty);
    row *= scalar_replace_factor(flag(c, scalar_row_), 0.8);

    // --- Column sweep (stride N): tiles 4..7, unrolls 2..3. ---
    // Each inner iteration touches a new cache line, so the working set is
    // amplified by the line size / element ratio (64B line / 8B element).
    const double col_t0 = value(c, tiles_[4]);
    const double col_t1 = value(c, tiles_[5]);
    const double col_inner =
        std::min(value(c, tiles_[6]) * value(c, tiles_[7]), col_t0 * col_t1);
    const double col_ws = 3.0 * 64.0 * std::max(col_inner, col_t0);
    double col = seconds_for_flops(sweep_flops);
    col *= tile_time_factor(col_ws, /*bytes_per_flop=*/8.0);
    col *= unroll_time_factor(
        value(c, unrolls_[2]) * value(c, unrolls_[3]), /*register_demand=*/5.0);
    col *= regtile_time_factor(
        value(c, regtiles_[2]) * value(c, regtiles_[3]), /*reuse=*/0.5);
    // Strided access defeats SIMD almost entirely.
    col *= vector_time_factor(flag(c, vector_col_), 0.75, 0.85);
    col *= scalar_replace_factor(flag(c, scalar_col_), 0.6);

    // Fixed program startup / timer overhead.
    return 2e-3 + row + col;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_row_ = 0, scalar_col_ = 0;
  std::size_t vector_row_ = 0, vector_col_ = 0;
};

}  // namespace

WorkloadPtr make_adi() { return std::make_unique<AdiKernel>(); }

}  // namespace pwu::workloads::spapt
