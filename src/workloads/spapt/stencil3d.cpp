// STENCIL3D: 7-point 3D Jacobi stencil over an N^3 grid. The third
// dimension makes plane-sized working sets (N^2 per k-slab) the dominant
// constraint: the j-tile must shrink the active plane set into L2/L3 or
// every point misses. Classic 2.5D-blocking behaviour. Extended SPAPT set.
// 12 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class Stencil3dKernel final : public SpaptKernel {
 public:
  Stencil3dKernel() : SpaptKernel("stencil3d", 200) {
    tiles_ = add_tile_params(6, "T");  // (i,j,k) x 2 levels
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(1, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double timesteps = 25.0;
    const double flops = 8.0 * n * n * n * timesteps;

    const double ti = std::min(value(c, tiles_[0]), n);
    const double tj = std::min(value(c, tiles_[1]), n);
    const double tk = std::min(value(c, tiles_[2]), n);
    const double inner =
        std::min({value(c, tiles_[3]) * value(c, tiles_[4]) *
                      value(c, tiles_[5]),
                  ti * tj * tk});

    // 2.5D blocking: the live set is three consecutive k-planes of the
    // (ti x tj) tile across the two arrays.
    const double plane_set = 8.0 * 2.0 * 3.0 * ti * tj;
    const double ws = std::max(plane_set, 8.0 * 2.0 * std::cbrt(inner));

    double t = seconds_for_flops(flops);
    t *= tile_time_factor(ws, /*bytes_per_flop=*/2.0);
    // Tiny tiles re-stream halos: 7-point halo overhead ~ surface/volume.
    const double surface_to_volume =
        2.0 * (1.0 / std::max(ti, 1.0) + 1.0 / std::max(tj, 1.0) +
               1.0 / std::max(tk, 1.0));
    t *= 1.0 + 0.8 * std::min(surface_to_volume, 1.5);

    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/8.0);
    t *= 1.0 + 0.1 / std::max(value(c, unrolls_[2]), 1.0) - 0.1;
    t *= regtile_time_factor(value(c, regtiles_[0]), /*reuse=*/0.85);
    // Unit-stride i-loop vectorizes cleanly given a long enough i-tile.
    t *= vector_time_factor(flag(c, vector_), 0.85,
                            ti >= 32.0 ? 0.06 : 0.4);
    t *= scalar_replace_factor(flag(c, scalar_), 0.75);

    return 1.5e-3 + t;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_stencil3d() { return std::make_unique<Stencil3dKernel>(); }

}  // namespace pwu::workloads::spapt
