// SYR2K: symmetric rank-2k update C = beta C + alpha (A B^T + B A^T).
// Twice SYRK's streamed volume — two input matrices — so it sits closer to
// the bandwidth roof and register tiling matters more than cache tiling.
// Extended SPAPT set. 14 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class Syr2kKernel final : public SpaptKernel {
 public:
  Syr2kKernel() : SpaptKernel("syr2k", 800) {
    tiles_ = add_tile_params(6, "T");
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(3, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = 2.0 * n * n * n;  // two rank-k products (triangle)

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    const double tk = value(c, tiles_[2]);
    const double inner = std::min(value(c, tiles_[3]) * value(c, tiles_[4]),
                                  ti * tj);
    // Four panels live at once: A-row, B-row, A-col, B-col (+ C block).
    const double ws = 8.0 * (4.0 * ti * tk + ti * tj + inner);

    double t = seconds_for_flops(flops);
    const double matrix_bytes = 2.0 * 8.0 * n * n;
    const double restream =
        std::clamp(2.0 / ti + 2.0 / tj + 2.0 / tk, 0.0, 1.0);
    // Double streamed volume -> double bytes per flop vs SYRK.
    const double bytes_per_flop =
        std::clamp(6.0 * (1.0 / ti + 1.0 / tj + 2.0 / tk), 0.4, 16.0);
    t *= tile_time_factor(std::max(ws, matrix_bytes * restream),
                          bytes_per_flop);

    t *= 1.0 + 0.3 * std::max(ti, tj) / n;

    // The fused rank-2 body carries ~10 live values: jam cliffs early.
    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/10.0);
    t *= 1.0 + 0.08 / std::max(value(c, unrolls_[2]), 1.0) - 0.08;
    t *= regtile_time_factor(value(c, regtiles_[0]) * value(c, regtiles_[1]),
                             /*reuse=*/0.8);
    t *= regtile_time_factor(value(c, regtiles_[2]), /*reuse=*/0.3);
    t *= vector_time_factor(flag(c, vector_), 0.85,
                            tj >= 32.0 ? 0.06 : 0.4);
    t *= scalar_replace_factor(flag(c, scalar_), 0.8);

    // Distribution tile: splitting the two products re-reads C but halves
    // register pressure — helpful only under heavy jam.
    const double split_tile = value(c, tiles_[5]);
    const double jam = value(c, unrolls_[0]) * value(c, unrolls_[1]);
    if (split_tile >= 64.0) t *= jam > 12.0 ? 0.94 : 1.05;

    return 1.2e-3 + 0.5 * t;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_syr2k() { return std::make_unique<Syr2kKernel>(); }

}  // namespace pwu::workloads::spapt
