// MM: dense matrix-matrix multiply C = A B, the canonical tiling target.
// Three-level blocking (cache tiles, second-level tiles, register tiles)
// plus unroll-jam of the micro-kernel. The performance surface has the
// classic deep valley at (L2-sized k-tile, register-tile 8, moderate jam)
// with steep cliffs on the register-spill side — a good stress test for a
// surrogate model's ability to localize a narrow optimum. 16 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class MmKernel final : public SpaptKernel {
 public:
  MmKernel() : SpaptKernel("mm", 800) {
    tiles_ = add_tile_params(6, "T");      // (i,j,k) x 2 levels
    unrolls_ = add_unroll_params(4, "U");  // micro-kernel jam (i,j) + copy
    regtiles_ = add_regtile_params(4, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = 2.0 * n * n * n;

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    const double tk = value(c, tiles_[2]);
    const double i2 = value(c, tiles_[3]);
    const double j2 = value(c, tiles_[4]);
    const double k2 = value(c, tiles_[5]);

    // Level-1 blocking working set (A panel + B panel + C block).
    const double ws1 = 8.0 * (ti * tk + tk * tj + ti * tj);
    // Level-2 blocking only helps when properly nested inside level 1.
    const double ws2 = 8.0 * (std::min(i2, ti) * std::min(k2, tk) +
                              std::min(k2, tk) * std::min(j2, tj) +
                              std::min(i2, ti) * std::min(j2, tj));

    double t = seconds_for_flops(flops);
    // Blocked-GEMM traffic: each A panel streams n/tj times, B n/ti times,
    // so bytes/flop ~ 4 * (1/ti + 1/tj + 2/tk). Tiny tiles re-stream the
    // matrices constantly; the re-streamed data lives at the matrix
    // footprint, not the tile footprint, so the effective reuse distance
    // grows as the restream fraction does.
    const double matrix_bytes = 8.0 * n * n;
    const double restream =
        std::clamp(1.0 / ti + 1.0 / tj + 2.0 / tk, 0.0, 1.0);
    const double bytes_per_flop =
        std::clamp(4.0 * (1.0 / ti + 1.0 / tj + 2.0 / tk), 0.25, 16.0);
    const double ws1_eff = std::max(ws1, matrix_bytes * restream);
    const double ws2_eff = std::max(ws2, matrix_bytes * restream);
    t *= 0.6 * tile_time_factor(ws1_eff, bytes_per_flop) +
         0.4 * tile_time_factor(ws2_eff, bytes_per_flop);

    const double jam = value(c, unrolls_[0]) * value(c, unrolls_[1]);
    t *= unroll_time_factor(jam, /*register_demand=*/2.5);
    const double rt = value(c, regtiles_[0]) * value(c, regtiles_[1]);
    t *= regtile_time_factor(rt, /*reuse=*/1.0);
    // Register tiles interact with jam: both multiply live accumulators.
    if (rt * jam > 64.0) t *= 1.0 + 0.06 * std::log2(rt * jam / 64.0);

    t *= vector_time_factor(flag(c, vector_), 0.95,
                            tj >= 32.0 ? 0.03 : 0.4);
    t *= scalar_replace_factor(flag(c, scalar_), 0.9);

    // Copy-optimization micro-phase (unrolls 2..3, regtiles 2..3): packs B
    // panels; profitable for large k-tiles.
    double pack = seconds_for_flops(n * n);
    pack *= tile_time_factor(8.0 * tk * tj, 16.0);
    pack *= unroll_time_factor(value(c, unrolls_[2]) * value(c, unrolls_[3]),
                               2.0);
    pack *= regtile_time_factor(
        value(c, regtiles_[2]) * value(c, regtiles_[3]), 0.2);
    // Packing pays off for deep k-blocks that still leave an L2-friendly
    // panel; tiles as wide as the matrix have nothing left to pack.
    if (tk >= 128.0 && tj <= 128.0) t *= 0.93;

    return 1.5e-3 + t + pack;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_mm() { return std::make_unique<MmKernel>(); }

}  // namespace pwu::workloads::spapt
