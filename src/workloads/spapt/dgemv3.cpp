// DGEMV3: three chained dense matrix-vector products
//   w = A v,  x = B w,  y = C x
// over N x N matrices. Each product is independently tiled, unrolled and
// register-tiled, giving the largest parameter count among our SPAPT
// problems (38 parameters — the paper's upper bound). The chain creates a
// mild coupling: a product's output vector is the next one's input, so
// matching j-tiles keep the handoff vector cache-resident.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class Dgemv3Kernel final : public SpaptKernel {
 public:
  Dgemv3Kernel() : SpaptKernel("dgemv3", 13000) {
    tiles_ = add_tile_params(12, "T");      // 4 per product (2-level i/j)
    unrolls_ = add_unroll_params(12, "U");  // 4 per product
    regtiles_ = add_regtile_params(12, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = 2.0 * n * n;  // per product

    double total = 1.5e-3;
    double prev_tj = 0.0;
    for (std::size_t p = 0; p < 3; ++p) {
      const double ti = value(c, tiles_[4 * p + 0]);
      const double tj = value(c, tiles_[4 * p + 1]);
      const double inner_i = value(c, tiles_[4 * p + 2]);
      const double inner_j = value(c, tiles_[4 * p + 3]);
      // Matrix tile + input slice + output slice; the two-level tiling is
      // effective only when the inner tile nests inside the outer one.
      const double eff_inner = std::min(inner_i * inner_j, ti * tj);
      const double ws = 8.0 * (ti * tj + tj + ti + eff_inner);

      double t = seconds_for_flops(flops);
      t *= tile_time_factor(ws, /*bytes_per_flop=*/4.0);

      const double u = value(c, unrolls_[4 * p + 0]) *
                       value(c, unrolls_[4 * p + 1]);
      const double u_inner = value(c, unrolls_[4 * p + 2]) *
                             value(c, unrolls_[4 * p + 3]);
      // Outer jam multiplies live accumulators; inner jam only amortizes
      // loop control.
      t *= unroll_time_factor(u, /*register_demand=*/4.0);
      t *= 1.0 + 0.15 / std::sqrt(std::max(u_inner, 1.0)) - 0.15;

      const double rt = value(c, regtiles_[4 * p + 0]) *
                        value(c, regtiles_[4 * p + 1]);
      const double rt_inner = value(c, regtiles_[4 * p + 2]) *
                              value(c, regtiles_[4 * p + 3]);
      t *= regtile_time_factor(rt, /*reuse=*/0.7);
      t *= regtile_time_factor(rt_inner, /*reuse=*/0.25);

      t *= vector_time_factor(flag(c, vector_), 0.8,
                              tj >= 64.0 ? 0.08 : 0.4);
      t *= scalar_replace_factor(flag(c, scalar_), 0.7);

      // Chain handoff: if this product's row tile matches the previous
      // product's column tile, the intermediate vector stays in cache.
      if (p > 0 && std::abs(ti - prev_tj) < 1.0) t *= 0.93;
      prev_tj = tj;

      total += t;
    }
    return total;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_dgemv3() { return std::make_unique<Dgemv3Kernel>(); }

}  // namespace pwu::workloads::spapt
