#include "workloads/spapt/spapt_common.hpp"

#include <algorithm>
#include <cmath>

#include "space/parameter.hpp"

namespace pwu::workloads::spapt {

const std::vector<double>& tile_levels() {
  static const std::vector<double> levels = {1, 16, 32, 64, 128, 256, 512};
  return levels;
}

const std::vector<double>& regtile_levels() {
  static const std::vector<double> levels = {1, 8, 32};
  return levels;
}

SpaptKernel::SpaptKernel(std::string name, std::size_t n)
    : name_(std::move(name)),
      n_(n),
      platform_(sim::platform_a()),
      cache_(platform_) {
  // Kernels run under a second and are visibly noise-affected (paper
  // Section III-B), hence a stronger jitter than the default model; the
  // 35-repetition measurement protocol suppresses it.
  noise_.lognormal_sigma = 0.05;
  noise_.spike_probability = 0.02;
  noise_.spike_scale = 2.0;
}

std::vector<std::size_t> SpaptKernel::add_tile_params(
    std::size_t count, const std::string& prefix) {
  std::vector<std::size_t> indices;
  indices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    indices.push_back(space_.add(space::Parameter::ordinal(
        prefix + std::to_string(i + 1), tile_levels())));
  }
  return indices;
}

std::vector<std::size_t> SpaptKernel::add_unroll_params(
    std::size_t count, const std::string& prefix) {
  std::vector<std::size_t> indices;
  indices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    indices.push_back(space_.add(space::Parameter::int_range(
        prefix + std::to_string(i + 1), 1, kMaxUnroll)));
  }
  return indices;
}

std::vector<std::size_t> SpaptKernel::add_regtile_params(
    std::size_t count, const std::string& prefix) {
  std::vector<std::size_t> indices;
  indices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    indices.push_back(space_.add(space::Parameter::ordinal(
        prefix + std::to_string(i + 1), regtile_levels())));
  }
  return indices;
}

std::size_t SpaptKernel::add_flag(const std::string& flag_name) {
  return space_.add(space::Parameter::boolean(flag_name));
}

double SpaptKernel::value(const space::Configuration& config,
                          std::size_t param) const {
  return space_.param(param).numeric_value(config.level(param));
}

bool SpaptKernel::flag(const space::Configuration& config,
                       std::size_t param) const {
  return value(config, param) != 0.0;
}

double SpaptKernel::product(const space::Configuration& config,
                            const std::vector<std::size_t>& params) const {
  double p = 1.0;
  for (std::size_t idx : params) p *= value(config, idx);
  return p;
}

double SpaptKernel::seconds_for_flops(double flops) const {
  return platform_.scalar_flop_seconds(flops);
}

double SpaptKernel::tile_time_factor(double working_set_bytes,
                                     double bytes_per_flop) const {
  return cache_.tiling_penalty(working_set_bytes, bytes_per_flop);
}

double SpaptKernel::unroll_time_factor(double unroll_product,
                                       double register_demand) const {
  const double u = std::max(unroll_product, 1.0);
  // Loop-control overhead amortized by unrolling.
  const double overhead = 1.0 + 0.35 / std::sqrt(u);
  // x86-64 has 16 architectural vector/GP registers; demand beyond that
  // spills to the stack with quadratically growing cost in log-space, which
  // produces the characteristic cliff for large unroll-jam products.
  const double live_values = register_demand * u;
  double spill = 1.0;
  if (live_values > 16.0) {
    const double excess = std::log2(live_values / 16.0);
    spill += 0.10 * excess * excess;
  }
  return overhead * spill;
}

double SpaptKernel::regtile_time_factor(double regtile_product,
                                        double reuse) const {
  const double r = std::max(regtile_product, 1.0);
  // Benefit: operand reuse in registers (up to `reuse` * 18% time saving,
  // saturating around r = 8).
  const double benefit = 1.0 - 0.18 * reuse * (1.0 - 1.0 / std::sqrt(r));
  // Cost: register tiles beyond the register file spill.
  double spill = 1.0;
  if (r > 32.0) {
    spill += 0.12 * std::log2(r / 32.0);
  }
  return benefit * spill;
}

double SpaptKernel::vector_time_factor(bool enabled,
                                       double vectorizable_fraction,
                                       double stride_penalty) const {
  if (!enabled) return 1.0;
  const double width = platform_.simd_width;
  const double effective =
      std::max(1.0, width * (1.0 - std::clamp(stride_penalty, 0.0, 0.9)));
  const double f = std::clamp(vectorizable_fraction, 0.0, 1.0);
  // Amdahl over the vectorizable fraction.
  return (1.0 - f) + f / effective;
}

double SpaptKernel::scalar_replace_factor(bool enabled,
                                          double reuse_intensity) const {
  if (!enabled) return 1.0;
  const double reuse = std::clamp(reuse_intensity, 0.0, 1.0);
  const double saving = 1.0 - 0.10 * reuse;
  // Low-reuse kernels pay a small register-pressure tax for the transform.
  const double tax = reuse < 0.3 ? 1.03 : 1.0;
  return saving * tax;
}

}  // namespace pwu::workloads::spapt
