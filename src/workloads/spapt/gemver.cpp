// GEMVER composite kernel:
//   B = A + u1 v1^T + u2 v2^T        (rank-2 update, streaming write)
//   x = beta * B^T y + z             (transposed mat-vec, strided reads)
//   w = alpha * B x                  (mat-vec, unit stride)
// Three phases with opposite locality preferences share tiles through the
// matrix B — the same tile choice cannot be optimal for the update, the
// transposed product and the direct product simultaneously, which is what
// makes GEMVER a classic hard tuning target. 20 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class GemverKernel final : public SpaptKernel {
 public:
  GemverKernel() : SpaptKernel("gemver", 9000) {
    tiles_ = add_tile_params(8, "T");
    unrolls_ = add_unroll_params(6, "U");
    regtiles_ = add_regtile_params(4, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const bool vec = flag(c, vector_);
    const bool screp = flag(c, scalar_);

    // --- Phase 1: rank-2 update, 4 flops per element, write-dominated.
    const double t1i = value(c, tiles_[0]);
    const double t1j = value(c, tiles_[1]);
    double p1 = seconds_for_flops(4.0 * n * n);
    p1 *= tile_time_factor(8.0 * (t1i * t1j + 2.0 * t1i + 2.0 * t1j),
                           /*bytes_per_flop=*/6.0);
    p1 *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                             6.0);
    p1 *= regtile_time_factor(value(c, regtiles_[0]), 0.6);
    p1 *= vector_time_factor(vec, 0.8, t1j >= 64.0 ? 0.1 : 0.4);
    p1 *= scalar_replace_factor(screp, 0.85);

    // --- Phase 2: x = beta * B^T y + z — column walk (stride N).
    const double t2i = value(c, tiles_[2]);
    const double t2j = value(c, tiles_[3]);
    double p2 = seconds_for_flops(2.0 * n * n);
    p2 *= tile_time_factor(64.0 * std::max(t2i * t2j, t2i),
                           /*bytes_per_flop=*/8.0);
    p2 *= unroll_time_factor(value(c, unrolls_[2]) * value(c, unrolls_[3]),
                             4.0);
    p2 *= regtile_time_factor(value(c, regtiles_[1]), 0.5);
    p2 *= vector_time_factor(vec, 0.5, 0.8);  // strided: SIMD nearly useless
    p2 *= scalar_replace_factor(screp, 0.6);
    // Interaction with phase 1: if the update used a square-ish tile that
    // fits L2, the transposed walk re-reads warm lines.
    if (t1i * t1j * 8.0 < 256.0 * 1024.0 && std::abs(t1i - t2j) < 1.0) {
      p2 *= 0.90;
    }

    // --- Phase 3: w = alpha * B x — plain row-major mat-vec.
    const double t3i = value(c, tiles_[4]);
    const double t3j = value(c, tiles_[5]);
    double p3 = seconds_for_flops(2.0 * n * n);
    p3 *= tile_time_factor(8.0 * (t3i * t3j + t3j),
                           /*bytes_per_flop=*/4.0);
    p3 *= unroll_time_factor(value(c, unrolls_[4]) * value(c, unrolls_[5]),
                             4.0);
    p3 *= regtile_time_factor(value(c, regtiles_[2]) * value(c, regtiles_[3]),
                              0.75);
    p3 *= vector_time_factor(vec, 0.85, t3j >= 64.0 ? 0.05 : 0.35);
    p3 *= scalar_replace_factor(screp, 0.8);

    // Tiles 6-7 control loop fusion of phases 2 and 3; matching them saves
    // one full pass over B.
    const double f1 = value(c, tiles_[6]);
    const double f2 = value(c, tiles_[7]);
    const double fusion_gain =
        (std::abs(f1 - f2) < 1.0 && f1 >= 32.0) ? 0.88 : 1.0;

    return 1.5e-3 + p1 + (p2 + p3) * fusion_gain;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_gemver() { return std::make_unique<GemverKernel>(); }

}  // namespace pwu::workloads::spapt
