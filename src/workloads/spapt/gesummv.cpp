// GESUMMV: y = alpha * A x + beta * B x — two simultaneous mat-vec
// products sharing the input vector x. Small space (9 parameters): the
// kernel streams two matrices at once, so it is firmly bandwidth-bound and
// the main wins come from keeping x resident and from SIMD on the fused
// inner loop.

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class GesummvKernel final : public SpaptKernel {
 public:
  GesummvKernel() : SpaptKernel("gesummv", 11000) {
    tiles_ = add_tile_params(4, "T");
    unrolls_ = add_unroll_params(2, "U");
    regtiles_ = add_regtile_params(1, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    // 4 flops per (i, j): two multiply-adds across A and B.
    const double flops = 4.0 * n * n;

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    // Two matrix tiles stream; the x slice (tj) is the reusable part.
    const double ws = 8.0 * (2.0 * ti * tj + tj + ti);
    double t = seconds_for_flops(flops);
    // Two streamed matrices -> high bytes/flop; tiling mostly protects x.
    t *= tile_time_factor(ws, /*bytes_per_flop=*/8.0);

    const double u = value(c, unrolls_[0]) * value(c, unrolls_[1]);
    // Fused body holds accumulators for both products.
    t *= unroll_time_factor(u, /*register_demand=*/6.0);
    t *= regtile_time_factor(value(c, regtiles_[0]), /*reuse=*/0.5);
    t *= vector_time_factor(flag(c, vector_), 0.85,
                            tj >= 64.0 ? 0.05 : 0.3);
    t *= scalar_replace_factor(flag(c, scalar_), 0.7);

    // Tiles 2-3: distribution (splitting the fused loop into two passes).
    // Splitting doubles the traffic over x but halves register pressure —
    // beneficial only with heavy jamming.
    const double split = value(c, tiles_[2]) >= value(c, tiles_[3]) ? 1.0
                         : (u > 8.0 ? 0.95 : 1.06);
    return 1e-3 + t * split;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_gesummv() { return std::make_unique<GesummvKernel>(); }

}  // namespace pwu::workloads::spapt
