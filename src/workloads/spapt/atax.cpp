// ATAX kernel: y = A^T (A x) over an N x N matrix — the paper's case-study
// kernel (Sections IV-B/IV-C, Figs. 6, 8, 9). Two phases: tmp = A x streams
// rows (unit stride, reduction into a scalar), y += A^T tmp updates a
// column vector per row (scatter with reuse of y). The reduction phase
// vectorizes well; the update phase is bandwidth-bound. 13 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class AtaxKernel final : public SpaptKernel {
 public:
  AtaxKernel() : SpaptKernel("atax", 14000) {
    tiles_ = add_tile_params(6, "T");       // 3 per phase (i, j, fused)
    unrolls_ = add_unroll_params(3, "U");   // phase1 i/j jam, phase2 jam
    regtiles_ = add_regtile_params(2, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double phase_flops = 2.0 * n * n;  // multiply-add per element

    // --- Phase 1: tmp = A x (row-major streaming, dot-product reduction).
    // The tile over j keeps a slice of x resident; the i-tile controls how
    // much of A streams between x reuses.
    const double p1_ti = value(c, tiles_[0]);
    const double p1_tj = value(c, tiles_[1]);
    const double p1_fuse = value(c, tiles_[2]);
    const double p1_ws =
        8.0 * (p1_ti * p1_tj + p1_tj) * std::max(1.0, p1_fuse / 256.0 + 1.0);
    double p1 = seconds_for_flops(phase_flops);
    p1 *= tile_time_factor(p1_ws, /*bytes_per_flop=*/4.0);
    p1 *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                             /*register_demand=*/4.0);
    p1 *= regtile_time_factor(value(c, regtiles_[0]), /*reuse=*/0.8);
    // Unit-stride dot products vectorize well once the j-tile covers a few
    // SIMD iterations.
    const double p1_stride = p1_tj >= 64.0 ? 0.05 : 0.4;
    p1 *= vector_time_factor(flag(c, vector_), 0.85, p1_stride);
    p1 *= scalar_replace_factor(flag(c, scalar_), 0.9);

    // --- Phase 2: y += A^T tmp (row-wise axpy into y).
    const double p2_ti = value(c, tiles_[3]);
    const double p2_tj = value(c, tiles_[4]);
    const double p2_fuse = value(c, tiles_[5]);
    // y slice + A tile stay live; fusing with phase 1 (modeled by the fuse
    // tile matching) reduces the streamed volume.
    const double p2_ws = 8.0 * (p2_ti * p2_tj + 2.0 * p2_tj);
    double p2 = seconds_for_flops(phase_flops);
    p2 *= tile_time_factor(p2_ws, /*bytes_per_flop=*/6.0);
    p2 *= unroll_time_factor(value(c, unrolls_[2]), /*register_demand=*/3.0);
    p2 *= regtile_time_factor(value(c, regtiles_[1]), /*reuse=*/0.6);
    p2 *= vector_time_factor(flag(c, vector_), 0.7, 0.25);
    p2 *= scalar_replace_factor(flag(c, scalar_), 0.5);
    // Cross-phase fusion interaction: matching fuse tiles avoid re-streaming
    // A between phases (up to ~12% total saving when equal and large).
    const double fuse_match =
        1.0 - 0.12 * (std::min(p1_fuse, p2_fuse) / 512.0);
    p2 *= fuse_match;

    return 1.5e-3 + p1 + p2;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_atax() { return std::make_unique<AtaxKernel>(); }

}  // namespace pwu::workloads::spapt
