// BiCG sub-kernel: in one sweep over A compute q = A p and s = A^T r.
// The fused loop reads each element of A once but updates both a
// reduction (q) and a scattered vector (s), so register pressure is the
// dominant constraint and the unroll-jam sweet spot is narrow.
// 12 parameters.

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class BicgKernel final : public SpaptKernel {
 public:
  BicgKernel() : SpaptKernel("bicg", 12000) {
    tiles_ = add_tile_params(5, "T");      // i-tile, j-tile per phase + fuse
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(2, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = 4.0 * n * n;  // two multiply-adds per element of A

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    const double fuse = value(c, tiles_[2]);
    // Fused sweep keeps a (ti x tj) block of A plus slices of all four
    // vectors live.
    const double ws = 8.0 * (ti * tj + 2.0 * ti + 2.0 * tj);
    double t = seconds_for_flops(flops);
    t *= tile_time_factor(ws, /*bytes_per_flop=*/4.0);

    // The fused body keeps ~8 live values; jamming multiplies that.
    const double u = value(c, unrolls_[0]) * value(c, unrolls_[1]);
    t *= unroll_time_factor(u, /*register_demand=*/8.0);
    t *= regtile_time_factor(
        value(c, regtiles_[0]) * value(c, regtiles_[1]), /*reuse=*/0.65);

    // The q-reduction half vectorizes; the s-scatter half does not. The
    // remaining un-fused cleanup phase (tiles 3-4, unroll 2) is cheap but
    // not free.
    t *= vector_time_factor(flag(c, vector_), 0.5, tj >= 64.0 ? 0.1 : 0.45);
    t *= scalar_replace_factor(flag(c, scalar_), 0.75);

    const double cleanup_ws = 8.0 * (value(c, tiles_[3]) + value(c, tiles_[4]));
    double cleanup = seconds_for_flops(2.0 * n);
    cleanup *= tile_time_factor(cleanup_ws, 8.0);
    cleanup *= unroll_time_factor(value(c, unrolls_[2]), 3.0);
    // Fusion distance interaction: a large fuse tile hides the cleanup cost.
    cleanup *= 1.0 - 0.5 * (fuse / 512.0);

    return 1e-3 + t + cleanup;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_bicg() { return std::make_unique<BicgKernel>(); }

}  // namespace pwu::workloads::spapt
