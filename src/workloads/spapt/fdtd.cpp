// FDTD-2D: finite-difference time-domain electromagnetic kernel — three
// coupled field arrays (ex, ey, hz) updated in two dependent phases per
// time step. The inter-phase dependency limits fusion; the three-array
// working set makes the cache tile a third of a same-size single-array
// stencil's. Extended SPAPT set. 11 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class FdtdKernel final : public SpaptKernel {
 public:
  FdtdKernel() : SpaptKernel("fdtd", 2200) {
    tiles_ = add_tile_params(4, "T");  // i/j tiles x two phases
    unrolls_ = add_unroll_params(4, "U");
    regtiles_ = add_regtile_params(1, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double timesteps = 40.0;
    // ~11 flops per point per step across the two phases.
    const double flops = 11.0 * n * n * timesteps;

    const bool vec = flag(c, vector_);
    const bool screp = flag(c, scalar_);

    // --- Phase 1: E-field updates (ex from hz row-diff, ey from hz
    // col-diff) — mixed stride.
    const double p1i = value(c, tiles_[0]);
    const double p1j = value(c, tiles_[1]);
    double p1 = seconds_for_flops(0.55 * flops);
    p1 *= tile_time_factor(8.0 * 3.0 * p1i * p1j, /*bytes_per_flop=*/5.0);
    // Un-tiled (tile 1) streams all three fields from memory each step.
    if (p1i <= 1.0 || p1j <= 1.0) {
      p1 *= tile_time_factor(3.0 * 8.0 * n * n, 5.0);
    }
    p1 *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                             /*register_demand=*/6.0);
    p1 *= vector_time_factor(vec, 0.8, p1j >= 64.0 ? 0.1 : 0.4);
    p1 *= scalar_replace_factor(screp, 0.7);

    // --- Phase 2: H-field update (hz from ex/ey diffs) — unit stride.
    const double p2i = value(c, tiles_[2]);
    const double p2j = value(c, tiles_[3]);
    double p2 = seconds_for_flops(0.45 * flops);
    p2 *= tile_time_factor(8.0 * 3.0 * p2i * p2j, /*bytes_per_flop=*/4.4);
    if (p2i <= 1.0 || p2j <= 1.0) {
      p2 *= tile_time_factor(3.0 * 8.0 * n * n, 4.4);
    }
    p2 *= unroll_time_factor(value(c, unrolls_[2]) * value(c, unrolls_[3]),
                             /*register_demand=*/5.0);
    p2 *= vector_time_factor(vec, 0.85, p2j >= 64.0 ? 0.08 : 0.35);
    p2 *= scalar_replace_factor(screp, 0.8);
    p2 *= regtile_time_factor(value(c, regtiles_[0]), /*reuse=*/0.6);

    // Matching phase tiles keep hz resident between phases within a step.
    const double locality_gain =
        (std::abs(p1i - p2i) < 1.0 && std::abs(p1j - p2j) < 1.0 &&
         p1i * p1j * 8.0 * 3.0 < 256.0 * 1024.0)
            ? 0.88
            : 1.0;

    return 1.5e-3 + (p1 + p2) * locality_gain;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_fdtd() { return std::make_unique<FdtdKernel>(); }

}  // namespace pwu::workloads::spapt
