// JACOBI-1D: time-iterated 3-point stencil
//   B[i] = 0.33 * (A[i-1] + A[i] + A[i+1]);  swap(A, B)
// over T time steps. The smallest SPAPT space here (8 parameters). The key
// optimization is time skewing (modeled by the second tile pair): blocking
// across time steps turns a bandwidth-bound sweep into a cache-resident
// one, a large discrete win that creates a distinctly bimodal performance
// landscape.

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class JacobiKernel final : public SpaptKernel {
 public:
  JacobiKernel() : SpaptKernel("jacobi", 8000000) {
    tiles_ = add_tile_params(4, "T");  // space tile, time-skew tile x 2 levels
    unrolls_ = add_unroll_params(2, "U");
    regtiles_ = add_regtile_params(1, "RT");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double timesteps = 100.0;
    const double flops = 3.0 * n * timesteps;

    const double space_tile = value(c, tiles_[0]);
    const double time_tile = value(c, tiles_[1]);
    const double inner_space = value(c, tiles_[2]);
    const double inner_time = value(c, tiles_[3]);

    // Without time skewing (time_tile == 1) every sweep streams 2N doubles
    // from memory. With skewing, a space tile is reused across `time_tile`
    // steps, shrinking the per-sweep working set.
    const double effective_tile =
        std::max(space_tile * 128.0, inner_space * inner_time * 16.0);
    const double reuse_steps = std::max(time_tile, 1.0);
    const double streamed_ws =
        (2.0 * 8.0 * effective_tile) / std::min(reuse_steps, 8.0) +
        // Skewing adds halo recomputation proportional to the time depth.
        8.0 * reuse_steps * 2.0;

    double t = seconds_for_flops(flops);
    t *= tile_time_factor(streamed_ws, /*bytes_per_flop=*/5.3);
    // Skewed loop bodies carry extra index arithmetic.
    if (reuse_steps > 1.0) t *= 1.04;

    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/3.0);
    t *= regtile_time_factor(value(c, regtiles_[0]), /*reuse=*/0.9);
    // Unit-stride 3-point stencil: near-ideal SIMD, slightly hampered by
    // skewing's shifted alignment.
    t *= vector_time_factor(flag(c, vector_), 0.9,
                            reuse_steps > 1.0 ? 0.25 : 0.05);

    return 1e-3 + t;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t vector_ = 0;
};

}  // namespace

WorkloadPtr make_jacobi() { return std::make_unique<JacobiKernel>(); }

}  // namespace pwu::workloads::spapt
