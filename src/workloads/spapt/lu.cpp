// LU decomposition (no pivoting) of an N x N matrix. The triangular
// iteration space means the trailing-submatrix update shrinks every step:
// tiling pays off early (large trailing matrix) and loop overhead dominates
// late (small trailing matrix), so the optimal tile is a compromise — a
// different geometry from the rectangular kernels. 15 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class LuKernel final : public SpaptKernel {
 public:
  LuKernel() : SpaptKernel("lu", 900) {
    tiles_ = add_tile_params(6, "T");      // panel, update i/j/k, 2nd level
    unrolls_ = add_unroll_params(4, "U");
    regtiles_ = add_regtile_params(3, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    // 2/3 n^3 multiply-adds; the divides in the panel are ~2% of work but
    // 10x the per-op cost.
    const double update_flops = (2.0 / 3.0) * n * n * n;
    const double panel_flops = 0.5 * n * n * 10.0;

    // --- Trailing-submatrix update (GEMM-like): tiles 1..3 two-level with
    // tiles 4..5.
    const double ti = value(c, tiles_[1]);
    const double tj = value(c, tiles_[2]);
    const double tk = value(c, tiles_[3]);
    const double inner = std::min(value(c, tiles_[4]) * value(c, tiles_[5]),
                                  ti * tj);
    const double ws = 8.0 * (ti * tk + tk * tj + ti * tj + inner);
    double upd = seconds_for_flops(update_flops);
    const double bytes_per_flop = 8.0 / std::clamp(tk / 32.0, 0.25, 8.0);
    upd *= tile_time_factor(ws, bytes_per_flop);
    // Triangular shrinkage: large tiles waste work on ragged edges.
    // Overhead ~ tile size / average trailing dimension.
    const double ragged = 1.0 + 0.25 * std::max(ti, tj) / (0.5 * n);
    upd *= ragged;

    upd *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]) *
                                  value(c, unrolls_[2]),
                              /*register_demand=*/3.0);
    upd *= regtile_time_factor(
        value(c, regtiles_[0]) * value(c, regtiles_[1]), /*reuse=*/0.85);
    upd *= vector_time_factor(flag(c, vector_), 0.9,
                              tj >= 32.0 ? 0.06 : 0.45);
    upd *= scalar_replace_factor(flag(c, scalar_), 0.8);

    // --- Panel factorization: divides down the column, stride-N access,
    // inherently sequential (no SIMD win).
    const double pt = value(c, tiles_[0]);
    double panel = seconds_for_flops(panel_flops);
    panel *= tile_time_factor(64.0 * std::max(pt, 16.0),
                              /*bytes_per_flop=*/8.0);
    panel *= unroll_time_factor(value(c, unrolls_[3]),
                                /*register_demand=*/4.0);
    panel *= regtile_time_factor(value(c, regtiles_[2]), 0.3);
    // Interaction: a panel tile matching the update's k-tile streams the
    // panel straight into the update.
    if (std::abs(pt - tk) < 1.0) panel *= 0.9;

    return 1.5e-3 + upd + panel;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_lu() { return std::make_unique<LuKernel>(); }

}  // namespace pwu::workloads::spapt
