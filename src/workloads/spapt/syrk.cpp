// SYRK: symmetric rank-k update C = beta C + alpha A A^T (lower triangle).
// GEMM-shaped reuse with one streamed operand instead of two — A is read
// both row-wise and column-wise, so a square-ish tile serves both access
// patterns and the tiling optimum is tighter than MM's. Extended SPAPT set.
// 13 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class SyrkKernel final : public SpaptKernel {
 public:
  SyrkKernel() : SpaptKernel("syrk", 950) {
    tiles_ = add_tile_params(5, "T");
    unrolls_ = add_unroll_params(3, "U");
    regtiles_ = add_regtile_params(3, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double flops = n * n * n;  // triangle x 2 flops per MAC

    const double ti = value(c, tiles_[0]);
    const double tj = value(c, tiles_[1]);
    const double tk = value(c, tiles_[2]);
    const double inner = std::min(value(c, tiles_[3]) * value(c, tiles_[4]),
                                  ti * tj);
    // A-tile serves both the row and the transposed access: effective
    // working set counts it twice unless ti == tj (shared panel).
    const double panel_share = std::abs(ti - tj) < 1.0 ? 1.0 : 2.0;
    const double ws =
        8.0 * (panel_share * ti * tk + ti * tj + inner);

    double t = seconds_for_flops(flops);
    const double matrix_bytes = 8.0 * n * n;
    const double restream =
        std::clamp(1.0 / ti + 1.0 / tj + 2.0 / tk, 0.0, 1.0);
    const double bytes_per_flop =
        std::clamp(3.0 * (1.0 / ti + 1.0 / tj + 2.0 / tk), 0.2, 14.0);
    t *= tile_time_factor(std::max(ws, matrix_bytes * restream),
                          bytes_per_flop);

    // Triangular output raggedness.
    t *= 1.0 + 0.3 * std::max(ti, tj) / n;

    t *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                            /*register_demand=*/2.5);
    t *= 1.0 + 0.08 / std::max(value(c, unrolls_[2]), 1.0) - 0.08;
    t *= regtile_time_factor(value(c, regtiles_[0]) * value(c, regtiles_[1]),
                             /*reuse=*/1.0);
    t *= regtile_time_factor(value(c, regtiles_[2]), /*reuse=*/0.2);
    t *= vector_time_factor(flag(c, vector_), 0.9,
                            tj >= 32.0 ? 0.05 : 0.4);
    t *= scalar_replace_factor(flag(c, scalar_), 0.9);

    return 1.2e-3 + 0.5 * t;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_syrk() { return std::make_unique<SyrkKernel>(); }

}  // namespace pwu::workloads::spapt
