// MVT: x1 = x1 + A y1 (row-major mat-vec) and x2 = x2 + A^T y2 (transposed
// mat-vec) over the same matrix. The two halves want transposed loop
// orders; fusing them reads A once but forces one half to run with the
// wrong stride. The fusion decision (modeled through matching tiles)
// dominates everything else. 12 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class MvtKernel final : public SpaptKernel {
 public:
  MvtKernel() : SpaptKernel("mvt", 13000) {
    tiles_ = add_tile_params(4, "T");      // i/j tiles for each half
    unrolls_ = add_unroll_params(4, "U");
    regtiles_ = add_regtile_params(2, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());
    const double half_flops = 2.0 * n * n;

    const double t1i = value(c, tiles_[0]);
    const double t1j = value(c, tiles_[1]);
    const double t2i = value(c, tiles_[2]);
    const double t2j = value(c, tiles_[3]);

    // Half 1: row-major, unit stride.
    double h1 = seconds_for_flops(half_flops);
    h1 *= tile_time_factor(8.0 * (t1i * t1j + t1j + t1i),
                           /*bytes_per_flop=*/4.0);
    h1 *= unroll_time_factor(value(c, unrolls_[0]) * value(c, unrolls_[1]),
                             4.0);
    h1 *= regtile_time_factor(value(c, regtiles_[0]), 0.7);
    h1 *= vector_time_factor(flag(c, vector_), 0.85,
                             t1j >= 64.0 ? 0.05 : 0.35);
    h1 *= scalar_replace_factor(flag(c, scalar_), 0.8);

    // Half 2: transposed — tiling is what rescues the stride-N walk. A
    // square-ish tile that fits L2 converts column misses into row reuse.
    const double tile_bytes = 8.0 * t2i * t2j;
    const bool blocked = tile_bytes > 1.0 && t2i >= 16.0 && t2j >= 16.0 &&
                         tile_bytes < 256.0 * 1024.0;
    double h2 = seconds_for_flops(half_flops);
    h2 *= tile_time_factor(blocked ? tile_bytes : 64.0 * n,
                           /*bytes_per_flop=*/blocked ? 4.0 : 8.0);
    h2 *= unroll_time_factor(value(c, unrolls_[2]) * value(c, unrolls_[3]),
                             4.0);
    h2 *= regtile_time_factor(value(c, regtiles_[1]), 0.5);
    h2 *= vector_time_factor(flag(c, vector_), 0.5, blocked ? 0.3 : 0.85);
    h2 *= scalar_replace_factor(flag(c, scalar_), 0.6);

    // Fusion: matching tiles across halves reads A once (saves ~20% of the
    // bandwidth-bound time) at a small register-pressure cost.
    if (std::abs(t1i - t2i) < 1.0 && std::abs(t1j - t2j) < 1.0) {
      const double fused = 0.8 * (h1 + h2) * 1.03;
      return 1e-3 + fused;
    }
    return 1e-3 + h1 + h2;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_mvt() { return std::make_unique<MvtKernel>(); }

}  // namespace pwu::workloads::spapt
