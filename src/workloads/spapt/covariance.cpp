// COVARIANCE: column-mean subtraction followed by the symmetric product
// C = X^T X / (n-1). Structurally correlation's sibling without the
// stddev-normalization sweep — one fewer bandwidth-bound phase, so the
// product phase dominates even more and the tuning surface is closer to
// pure GEMM. Extended SPAPT set. 18 parameters.

#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class CovarianceKernel final : public SpaptKernel {
 public:
  CovarianceKernel() : SpaptKernel("covariance", 900) {
    tiles_ = add_tile_params(8, "T");  // 2 mean-phase + 6 product nest
    unrolls_ = add_unroll_params(5, "U");
    regtiles_ = add_regtile_params(3, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());

    // --- Mean subtraction: one column sweep (stride N).
    const double mean_tile = value(c, tiles_[0]) * value(c, tiles_[1]);
    double mean_phase = seconds_for_flops(3.0 * n * n);
    mean_phase *= tile_time_factor(
        64.0 * std::max(mean_tile, value(c, tiles_[0])),
        /*bytes_per_flop=*/8.0);
    mean_phase *= unroll_time_factor(value(c, unrolls_[0]), 4.0);
    mean_phase *= vector_time_factor(flag(c, vector_), 0.4, 0.8);

    // --- Symmetric product over the centered data (upper triangle).
    const double prod_flops = n * n * n;
    const double ti = value(c, tiles_[2]);
    const double tj = value(c, tiles_[3]);
    const double tk = value(c, tiles_[4]);
    const double inner = std::min({value(c, tiles_[5]) * value(c, tiles_[6]),
                                   value(c, tiles_[7]) * tk, ti * tj});
    const double ws = 8.0 * (ti * tk + tk * tj + ti * tj + inner);

    double prod = seconds_for_flops(prod_flops);
    const double matrix_bytes = 8.0 * n * n;
    const double restream =
        std::clamp(1.0 / ti + 1.0 / tj + 2.0 / tk, 0.0, 1.0);
    const double bytes_per_flop =
        std::clamp(4.0 * (1.0 / ti + 1.0 / tj + 2.0 / tk), 0.25, 16.0);
    prod *= tile_time_factor(std::max(ws, matrix_bytes * restream),
                             bytes_per_flop);
    prod *= 1.0 + 0.25 * std::max(ti, tj) / n;  // triangular raggedness

    prod *= unroll_time_factor(value(c, unrolls_[1]) * value(c, unrolls_[2]) *
                                   value(c, unrolls_[3]),
                               /*register_demand=*/3.0);
    prod *= 1.0 + 0.08 / std::max(value(c, unrolls_[4]), 1.0) - 0.08;
    prod *= regtile_time_factor(
        value(c, regtiles_[0]) * value(c, regtiles_[1]), /*reuse=*/0.9);
    prod *= regtile_time_factor(value(c, regtiles_[2]), /*reuse=*/0.25);
    prod *= vector_time_factor(flag(c, vector_), 0.9,
                               tj >= 32.0 ? 0.05 : 0.5);
    prod *= scalar_replace_factor(flag(c, scalar_), 0.85);

    return 1.5e-3 + mean_phase + 0.5 * prod;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_covariance() { return std::make_unique<CovarianceKernel>(); }

}  // namespace pwu::workloads::spapt
