// Correlation-matrix kernel: column standardization (mean/stddev sweeps)
// followed by the symmetric rank-k style product C = X^T X over the
// standardized data. The product phase dominates and behaves like a
// matrix-matrix multiply over the upper triangle; the standardization
// phases are bandwidth-bound column walks (stride-N). 22 parameters —
// one of the larger SPAPT spaces.

#include <algorithm>
#include <memory>

#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads::spapt {

namespace {

class CorrelationKernel final : public SpaptKernel {
 public:
  CorrelationKernel() : SpaptKernel("correlation", 900) {
    tiles_ = add_tile_params(10, "T");     // 2 std-phase + 8 product nest
    unrolls_ = add_unroll_params(6, "U");
    regtiles_ = add_regtile_params(4, "RT");
    scalar_ = add_flag("SCREP");
    vector_ = add_flag("VEC");
  }

  double base_time(const space::Configuration& c) const override {
    const auto n = static_cast<double>(problem_size());

    // --- Standardization: two column sweeps (mean, stddev+scale).
    const double std_flops = 5.0 * n * n;
    const double std_tile = value(c, tiles_[0]) * value(c, tiles_[1]);
    // Column-major walk: line-size amplification like ADI's column sweep.
    const double std_ws = 64.0 * std::max(std_tile, value(c, tiles_[0]));
    double std_phase = seconds_for_flops(std_flops);
    std_phase *= tile_time_factor(std_ws, /*bytes_per_flop=*/8.0);
    std_phase *= unroll_time_factor(value(c, unrolls_[0]), 4.0);
    std_phase *= vector_time_factor(flag(c, vector_), 0.4, 0.8);

    // --- Product: C[i][j] = sum_k X[k][i] * X[k][j], upper triangle.
    // Classic 3-nested GEMM-like loop: tiles 2..7 form a two-level (i,j,k)
    // tiling, tiles 8..9 pack the panel.
    const double prod_flops = n * n * n;  // triangle x 2 flops
    const double ti = value(c, tiles_[2]);
    const double tj = value(c, tiles_[3]);
    const double tk = value(c, tiles_[4]);
    const double inner =
        std::min({value(c, tiles_[5]) * value(c, tiles_[6]),
                  value(c, tiles_[7]) * tk, ti * tj});
    // GEMM working set: A-panel + B-panel + C-block.
    const double ws = 8.0 * (ti * tk + tk * tj + ti * tj + inner);
    double prod = seconds_for_flops(prod_flops);
    // High arithmetic intensity when tiled well: bytes/flop shrinks with a
    // balanced k-tile (operand reuse ~ tk).
    const double bytes_per_flop = 8.0 / std::clamp(tk / 32.0, 0.25, 8.0);
    prod *= tile_time_factor(ws, bytes_per_flop);

    const double u = value(c, unrolls_[1]) * value(c, unrolls_[2]) *
                     value(c, unrolls_[3]);
    prod *= unroll_time_factor(u, /*register_demand=*/3.0);
    const double rt = value(c, regtiles_[0]) * value(c, regtiles_[1]);
    prod *= regtile_time_factor(rt, /*reuse=*/0.9);
    prod *= vector_time_factor(flag(c, vector_), 0.9,
                               tj >= 32.0 ? 0.05 : 0.5);
    prod *= scalar_replace_factor(flag(c, scalar_), 0.85);

    // Packing phase (tiles 8..9, unrolls 4..5, regtiles 2..3): copies panels
    // into contiguous buffers; pays off only when the product tile is large.
    const double pack_ws = 8.0 * value(c, tiles_[8]) * value(c, tiles_[9]);
    double pack = seconds_for_flops(0.5 * n * n);
    pack *= tile_time_factor(pack_ws, 16.0);
    pack *= unroll_time_factor(value(c, unrolls_[4]) * value(c, unrolls_[5]),
                               2.0);
    pack *= regtile_time_factor(
        value(c, regtiles_[2]) * value(c, regtiles_[3]), 0.3);
    // Interaction: packing reduces the product's effective working set.
    if (pack_ws > 8.0 * 64.0 * 64.0) prod *= 0.92;

    return 2e-3 + std_phase + prod + pack;
  }

 private:
  std::vector<std::size_t> tiles_, unrolls_, regtiles_;
  std::size_t scalar_ = 0, vector_ = 0;
};

}  // namespace

WorkloadPtr make_correlation() {
  return std::make_unique<CorrelationKernel>();
}

}  // namespace pwu::workloads::spapt
