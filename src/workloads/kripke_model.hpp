// Performance simulator for the kripke discrete-ordinates transport
// mini-app over the paper's Table II parameter space (layout, group sets,
// direction sets, parallel method, process count) on Platform B.

#pragma once

#include "workloads/workload.hpp"

namespace pwu::workloads {

WorkloadPtr make_kripke();

}  // namespace pwu::workloads
