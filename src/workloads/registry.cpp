#include "workloads/registry.hpp"

#include <stdexcept>

#include "workloads/hypre_model.hpp"
#include "workloads/kripke_model.hpp"
#include "workloads/spapt/spapt_common.hpp"

namespace pwu::workloads {

std::vector<std::string> kernel_names() {
  return {"adi",    "atax",        "bicg", "correlation",
          "dgemv3", "gemver",      "gesummv", "jacobi",
          "lu",     "mm",          "mvt",  "seidel"};
}

std::vector<std::string> extended_kernel_names() {
  return {"trmm", "syrk", "syr2k", "fdtd", "stencil3d", "covariance"};
}

std::vector<std::string> application_names() { return {"kripke", "hypre"}; }

std::vector<std::string> all_names() {
  std::vector<std::string> names = kernel_names();
  for (auto& app : application_names()) names.push_back(app);
  return names;
}

std::vector<std::string> full_suite_names() {
  std::vector<std::string> names = kernel_names();
  for (auto& k : extended_kernel_names()) names.push_back(k);
  for (auto& app : application_names()) names.push_back(app);
  return names;
}

WorkloadPtr make_workload(const std::string& name) {
  if (name == "adi") return spapt::make_adi();
  if (name == "atax") return spapt::make_atax();
  if (name == "bicg") return spapt::make_bicg();
  if (name == "correlation") return spapt::make_correlation();
  if (name == "dgemv3") return spapt::make_dgemv3();
  if (name == "gemver") return spapt::make_gemver();
  if (name == "gesummv") return spapt::make_gesummv();
  if (name == "jacobi") return spapt::make_jacobi();
  if (name == "lu") return spapt::make_lu();
  if (name == "mm") return spapt::make_mm();
  if (name == "mvt") return spapt::make_mvt();
  if (name == "seidel") return spapt::make_seidel();
  if (name == "trmm") return spapt::make_trmm();
  if (name == "syrk") return spapt::make_syrk();
  if (name == "syr2k") return spapt::make_syr2k();
  if (name == "fdtd") return spapt::make_fdtd();
  if (name == "stencil3d") return spapt::make_stencil3d();
  if (name == "covariance") return spapt::make_covariance();
  if (name == "kripke") return make_kripke();
  if (name == "hypre") return make_hypre();
  throw std::invalid_argument("make_workload: unknown workload '" + name +
                              "'");
}

}  // namespace pwu::workloads
