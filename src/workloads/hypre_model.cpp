// hypre / new_ij performance model (27pt 3D Laplacian, 128^3 global grid).
//
// Table III's `solver` ids are new_ij solver codes. We model each as a
// (setup weight, base iteration count, per-iteration cost weight,
// krylov overhead) profile:
//
//   0      AMG as a standalone solver        — heavy setup, few iterations
//   1      AMG-PCG                           — the usual best choice
//   2      DS-PCG (diagonal-scaled CG)       — trivial setup, many iters
//   3      AMG-GMRES, 4 DS-GMRES, 5 AMG-CGNR, 6 DS-CGNR,
//   7      PILUT-GMRES, 8 ParaSails-PCG, 9 AMG-BiCGSTAB, 10 DS-BiCGSTAB,
//   11     PILUT-BiCGSTAB, 12 Schwarz-PCG, 13 GSMG, 14 GSMG-PCG,
//   15     GSMG-GMRES, 18 ParaSails-GMRES, 20 Hybrid,
//   43-45  Euclid-PCG/-GMRES/-BICGSTAB, 50-51 DS-LGMRES/AMG-LGMRES,
//   60-61  DS-FlexGMRES/AMG-FlexGMRES.
//
// The smoother (smtype 0..8: Jacobi, GS variants, hybrid GS, l1-GS,
// Chebyshev, FCF-Jacobi, CG-smoother, ...) multiplies the per-iteration
// cost and divides the iteration count for the AMG-preconditioned solvers;
// it is irrelevant (a no-op feature) for the diagonally-scaled ones — an
// intentional "inactive parameter" structure that random forests handle
// well and that real hypre tuning exhibits.
//
// Coarsening pmis/hmis changes the AMG operator complexity: hmis yields a
// leaner hierarchy (cheaper iterations) at slightly more iterations.

#include "workloads/hypre_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <string>

#include "sim/network_model.hpp"
#include "sim/platform.hpp"
#include "space/parameter.hpp"

namespace pwu::workloads {

namespace {

constexpr double kGridDim = 128.0;

struct SolverProfile {
  double setup_weight;  // relative setup cost (1 = one matvec-equivalent)
  double base_iters;    // iterations to converge at 1e-8
  double iter_weight;   // cost of one iteration in matvec equivalents
  bool amg_preconditioned;  // smoother/coarsening active?
};

// Indexed by position in the solver parameter's level list.
const std::array<std::pair<int, SolverProfile>, 24>& solver_table() {
  static const std::array<std::pair<int, SolverProfile>, 24> table = {{
      {0, {90.0, 14.0, 3.6, true}},    // AMG
      {1, {90.0, 9.0, 4.2, true}},     // AMG-PCG
      {2, {2.0, 160.0, 1.3, false}},   // DS-PCG
      {3, {90.0, 10.0, 4.8, true}},    // AMG-GMRES
      {4, {2.0, 210.0, 1.6, false}},   // DS-GMRES
      {5, {90.0, 13.0, 4.6, true}},    // AMG-CGNR
      {6, {2.0, 340.0, 1.7, false}},   // DS-CGNR
      {7, {60.0, 55.0, 2.4, false}},   // PILUT-GMRES
      {8, {40.0, 70.0, 1.9, false}},   // ParaSails-PCG
      {9, {90.0, 8.0, 5.4, true}},     // AMG-BiCGSTAB
      {10, {2.0, 150.0, 2.2, false}},  // DS-BiCGSTAB
      {11, {60.0, 40.0, 3.1, false}},  // PILUT-BiCGSTAB
      {12, {75.0, 30.0, 3.4, false}},  // Schwarz-PCG
      {13, {120.0, 16.0, 3.8, true}},  // GSMG
      {14, {120.0, 10.0, 4.4, true}},  // GSMG-PCG
      {15, {120.0, 11.0, 5.0, true}},  // GSMG-GMRES
      {18, {40.0, 85.0, 2.1, false}},  // ParaSails-GMRES
      {20, {30.0, 45.0, 2.6, true}},   // Hybrid (switches DS->AMG)
      {43, {55.0, 48.0, 2.3, false}},  // Euclid-PCG
      {44, {55.0, 52.0, 2.7, false}},  // Euclid-GMRES
      {45, {55.0, 42.0, 3.0, false}},  // Euclid-BiCGSTAB
      {50, {2.0, 190.0, 1.7, false}},  // DS-LGMRES
      {51, {90.0, 10.0, 4.6, true}},   // AMG-LGMRES
      {60, {2.0, 185.0, 1.8, false}},  // DS-FlexGMRES
  }};
  return table;
}

// smtype effect on AMG-preconditioned solvers:
// {iteration multiplier, per-iteration cost multiplier}.
constexpr std::array<std::pair<double, double>, 9> kSmootherEffect = {{
    {1.45, 0.80},  // 0: weighted Jacobi — cheap, weak
    {1.20, 0.90},  // 1: sequential GS
    {1.10, 0.95},  // 2: symmetric GS sweep
    {1.00, 1.00},  // 3: hybrid GS / SOR (hypre default)
    {1.05, 1.02},  // 4: hybrid backward GS
    {0.92, 1.15},  // 5: hybrid symmetric GS
    {0.85, 1.35},  // 6: l1-scaled symmetric GS
    {0.80, 1.55},  // 7: Chebyshev
    {0.90, 1.30},  // 8: l1-scaled Jacobi
}};

class HypreModel final : public Workload {
 public:
  HypreModel()
      : name_("hypre"), platform_(sim::platform_b()), network_(platform_) {
    std::vector<std::string> solver_labels;
    solver_labels.reserve(solver_table().size());
    // Note Table III also lists id 61 (AMG-FlexGMRES); we keep 24 levels by
    // mapping positions onto the ids above plus 61 via the last AMG slot.
    for (const auto& [id, profile] : solver_table()) {
      solver_labels.push_back(std::to_string(id));
    }
    solver_ = space_.add(
        space::Parameter::categorical("solver", std::move(solver_labels)));
    coarsening_ =
        space_.add(space::Parameter::categorical("coarsening", {"pmis", "hmis"}));
    smtype_ = space_.add(space::Parameter::int_range("smtype", 0, 8));
    procs_ = space_.add(space::Parameter::ordinal(
        "nprocs", {8, 16, 32, 64, 128, 256, 512}));
    noise_.lognormal_sigma = 0.05;
    noise_.spike_probability = 0.02;
    noise_.spike_scale = 1.6;
  }

  const std::string& name() const override { return name_; }
  const space::ParameterSpace& space() const override { return space_; }
  const sim::NoiseModel& noise() const override { return noise_; }

  double base_time(const space::Configuration& c) const override {
    const SolverProfile& profile =
        solver_table()[c.level(solver_)].second;
    const bool hmis = c.level(coarsening_) == 1;
    const auto smoother = static_cast<std::size_t>(c.level(smtype_));
    const double procs = space_.param(procs_).numeric_value(c.level(procs_));

    const double unknowns = kGridDim * kGridDim * kGridDim;
    // One 27-pt matvec: 54 flops per row, bandwidth-bound in practice; per
    // rank cost at ~10% of peak.
    const double matvec_seconds =
        platform_.scalar_flop_seconds(54.0 * unknowns / procs) * 5.0;

    double iters = profile.base_iters;
    double iter_cost = profile.iter_weight;
    double setup = profile.setup_weight;
    if (profile.amg_preconditioned) {
      const auto& [iter_mult, cost_mult] = kSmootherEffect[smoother];
      iters *= iter_mult;
      iter_cost *= cost_mult;
      // hmis: ~20% leaner operators, ~10% more iterations.
      if (hmis) {
        iter_cost *= 0.80;
        setup *= 0.85;
        iters *= 1.10;
      }
    }

    // Communication: per iteration a halo exchange per hierarchy level
    // (AMG ~6 effective levels, Krylov-only 1) + 2 allreduces for dot
    // products.
    const double face_bytes =
        8.0 * std::pow(unknowns / procs, 2.0 / 3.0);
    const double levels = profile.amg_preconditioned ? 6.0 : 1.0;
    const auto p = static_cast<std::size_t>(procs);
    const double comm_per_iter =
        levels * network_.halo_exchange_seconds(face_bytes) +
        2.0 * network_.allreduce_seconds(16.0, p);
    // AMG coarse levels have terrible surface-to-volume ratios: setup
    // communication grows with both levels and procs.
    const double setup_comm =
        levels * network_.allreduce_seconds(1024.0, p) * 4.0;

    // Strong-scaling efficiency loss of the coarse-grid solves.
    const double coarse_penalty =
        profile.amg_preconditioned
            ? 1.0 + 0.03 * std::log2(procs) * std::log2(procs)
            : 1.0;

    const double startup = 0.5 + 0.02 * std::log2(procs + 1.0);
    return startup + setup * matvec_seconds * coarse_penalty + setup_comm +
           iters * (iter_cost * matvec_seconds + comm_per_iter);
  }

 private:
  std::string name_;
  space::ParameterSpace space_;
  sim::Platform platform_;
  sim::NetworkModel network_;
  sim::NoiseModel noise_;
  std::size_t solver_ = 0, coarsening_ = 0, smtype_ = 0, procs_ = 0;
};

}  // namespace

WorkloadPtr make_hypre() { return std::make_unique<HypreModel>(); }

}  // namespace pwu::workloads
