// Candidate-pool construction and the Algorithm-1 bookkeeping container.
//
// The paper samples 10,000 unique configurations uniformly from the space as
// a surrogate of the full space, then splits them 7000 (pool) / 3000 (test).
// `CandidatePool` supports O(1) removal of selected configurations so the
// active-learning loop never re-selects an evaluated sample.

#pragma once

#include <vector>

#include "space/configuration.hpp"
#include "space/parameter_space.hpp"
#include "util/rng.hpp"

namespace pwu::space {

/// Draws `count` *distinct* uniform configurations. Throws
/// std::invalid_argument when the space holds fewer than `count` points;
/// uses rejection sampling with a hash set (spaces here are >> count).
std::vector<Configuration> sample_unique(const ParameterSpace& space,
                                         std::size_t count, util::Rng& rng);

struct PoolSplit {
  std::vector<Configuration> pool;
  std::vector<Configuration> test;
};

/// Samples pool_size + test_size unique configurations and splits them.
/// Small discrete spaces (kripke/hypre hold only a few thousand points) are
/// enumerated, shuffled, and split in the requested proportion instead — the
/// pool then simply covers the whole space, which matches how such spaces
/// are tuned in practice.
PoolSplit make_pool_split(const ParameterSpace& space, std::size_t pool_size,
                          std::size_t test_size, util::Rng& rng);

/// Mutable view of the unlabeled pool X_pool in Algorithm 1.
/// Removal is swap-with-last, so indices are only stable until the next
/// `take`; strategies receive fresh predictions each iteration and therefore
/// always work with current indices.
class CandidatePool {
 public:
  explicit CandidatePool(std::vector<Configuration> configs);

  std::size_t size() const { return configs_.size(); }
  bool empty() const { return configs_.empty(); }

  const Configuration& at(std::size_t i) const { return configs_.at(i); }

  /// Removes and returns the configuration at `i`.
  Configuration take(std::size_t i);

  /// Removes and returns the configurations at the given indices
  /// (deduplicated, processed in descending order so earlier removals do not
  /// invalidate later ones).
  std::vector<Configuration> take_many(std::vector<std::size_t> indices);

  /// k distinct random indices into the current pool.
  std::vector<std::size_t> sample_indices(std::size_t k, util::Rng& rng) const;

  const std::vector<Configuration>& configs() const { return configs_; }

 private:
  std::vector<Configuration> configs_;
};

}  // namespace pwu::space
