// The Cartesian product of a set of parameters, with feature encoding for
// the surrogate model and uniform random sampling.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "space/configuration.hpp"
#include "space/parameter.hpp"
#include "util/rng.hpp"

namespace pwu::space {

class ParameterSpace {
 public:
  ParameterSpace() = default;

  /// Appends a parameter; returns its index. Names must be unique.
  std::size_t add(Parameter parameter);

  std::size_t num_params() const { return params_.size(); }
  const Parameter& param(std::size_t i) const { return params_.at(i); }

  /// Index of the parameter with the given name; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// Total number of configurations as a long double (spaces reach 10^30).
  long double size() const;
  double log10_size() const;

  /// Uniform sample over the full Cartesian product.
  Configuration random_config(util::Rng& rng) const;

  /// All configurations in lexicographic order. Throws std::length_error
  /// when the space holds more than `limit` points.
  std::vector<Configuration> enumerate(std::size_t limit = 1000000) const;

  /// Numeric feature vector (one entry per parameter, see
  /// Parameter::numeric_value).
  std::vector<double> features(const Configuration& config) const;

  /// Allocation-free variant: encodes into `out` (size num_params()) — the
  /// row-filling primitive for contiguous feature matrices.
  void write_features(const Configuration& config,
                      std::span<double> out) const;

  /// Per-feature categorical flags for the random forest.
  std::vector<bool> categorical_mask() const;

  /// Per-feature level counts (categorical split masks need these).
  std::vector<std::size_t> cardinalities() const;

  /// "name=value, ..." rendering of a configuration.
  std::string describe(const Configuration& config) const;

  /// Validates that the configuration shape/levels match this space.
  bool contains(const Configuration& config) const;

 private:
  std::vector<Parameter> params_;
};

}  // namespace pwu::space
