// A single tunable parameter: a named, finite, ordered domain of levels.
//
// SPAPT-style autotuning spaces mix
//   * integer ranges        (unroll-jam factor 1..31),
//   * ordinal value lists   (tile sizes 1,16,32,...,512),
//   * categorical labels    (kripke layout DGZ..ZGD, hypre solver ids),
//   * booleans              (scalar-replace, vectorize).
// All four are represented uniformly as an indexed list of levels. Ordinal
// and integer parameters expose a numeric value per level so the surrogate
// model can exploit their ordering; categorical parameters are flagged so the
// random forest treats them with set-membership splits.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pwu::space {

enum class ParamKind { kIntRange, kOrdinal, kCategorical, kBoolean };

const char* to_string(ParamKind kind);

class Parameter {
 public:
  /// Consecutive integers lo..hi inclusive with the given stride.
  static Parameter int_range(std::string name, long lo, long hi,
                             long step = 1);

  /// Explicit list of ordered numeric values (e.g. power-of-two tiles).
  static Parameter ordinal(std::string name, std::vector<double> values);

  /// Unordered labeled levels.
  static Parameter categorical(std::string name,
                               std::vector<std::string> labels);

  /// Two-level false/true parameter.
  static Parameter boolean(std::string name);

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }
  std::size_t num_levels() const { return labels_.size(); }

  /// True for categorical parameters (set-membership splits in the forest).
  /// Booleans are handled numerically (0/1) since they are trivially ordered.
  bool is_categorical() const { return kind_ == ParamKind::kCategorical; }

  /// Numeric feature value of a level: the actual value for int/ordinal,
  /// 0/1 for boolean, and the level index for categorical.
  double numeric_value(std::size_t level) const;

  /// Human-readable level label.
  const std::string& label(std::size_t level) const;

  /// Index of the level whose numeric value is closest to `value`
  /// (int/ordinal/boolean only).
  std::size_t nearest_level(double value) const;

 private:
  Parameter(std::string name, ParamKind kind, std::vector<double> values,
            std::vector<std::string> labels);

  void check_level(std::size_t level) const;

  std::string name_;
  ParamKind kind_;
  std::vector<double> values_;  // numeric value per level
  std::vector<std::string> labels_;
};

}  // namespace pwu::space
