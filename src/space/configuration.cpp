#include "space/configuration.hpp"

namespace pwu::space {

std::size_t Configuration::hash() const {
  std::size_t h = 1469598103934665603ULL;  // FNV offset basis
  for (std::uint32_t level : levels_) {
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (level >> (byte * 8)) & 0xffU;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

}  // namespace pwu::space
