// Space-filling initial designs (extension beyond the paper's uniform pool).
//
// Latin hypercube sampling stratifies every parameter's levels so that small
// pools still cover each univariate range evenly — a common upgrade to the
// paper's uniform pool construction, exposed for the ablation benchmarks.

#pragma once

#include <vector>

#include "space/configuration.hpp"
#include "space/parameter_space.hpp"
#include "util/rng.hpp"

namespace pwu::space {

/// Draws `count` configurations with Latin-hypercube stratification per
/// parameter: each parameter's level sequence visits each stratum of its
/// domain ~count/levels times, in an independently shuffled order.
/// Duplicates are possible for tiny spaces (the strata grid is what matters);
/// callers needing uniqueness can dedup and top up via sample_unique.
std::vector<Configuration> latin_hypercube(const ParameterSpace& space,
                                           std::size_t count, util::Rng& rng);

}  // namespace pwu::space
