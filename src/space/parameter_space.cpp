#include "space/parameter_space.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pwu::space {

std::size_t ParameterSpace::add(Parameter parameter) {
  for (const auto& existing : params_) {
    if (existing.name() == parameter.name()) {
      throw std::invalid_argument("ParameterSpace: duplicate parameter '" +
                                  parameter.name() + "'");
    }
  }
  params_.push_back(std::move(parameter));
  return params_.size() - 1;
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name() == name) return i;
  }
  throw std::out_of_range("ParameterSpace: no parameter named '" + name + "'");
}

long double ParameterSpace::size() const {
  long double total = 1.0L;
  for (const auto& p : params_) {
    total *= static_cast<long double>(p.num_levels());
  }
  return total;
}

double ParameterSpace::log10_size() const {
  double total = 0.0;
  for (const auto& p : params_) {
    total += std::log10(static_cast<double>(p.num_levels()));
  }
  return total;
}

Configuration ParameterSpace::random_config(
    util::Rng& rng PWU_RNG_STREAM(sampling)) const {
  std::vector<std::uint32_t> levels(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    levels[i] = static_cast<std::uint32_t>(rng.index(params_[i].num_levels()));
  }
  return Configuration(std::move(levels));
}

std::vector<Configuration> ParameterSpace::enumerate(std::size_t limit) const {
  const long double total = size();
  if (total > static_cast<long double>(limit)) {
    throw std::length_error("ParameterSpace::enumerate: space too large");
  }
  const auto count = static_cast<std::size_t>(total);
  std::vector<Configuration> out;
  out.reserve(count);
  std::vector<std::uint32_t> levels(params_.size(), 0);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(levels);
    // Odometer increment over the level vector.
    for (std::size_t d = params_.size(); d-- > 0;) {
      if (++levels[d] < params_[d].num_levels()) break;
      levels[d] = 0;
    }
  }
  return out;
}

std::vector<double> ParameterSpace::features(const Configuration& config) const {
  std::vector<double> f(params_.size());
  write_features(config, f);
  return f;
}

void ParameterSpace::write_features(const Configuration& config,
                                    std::span<double> out) const {
  if (config.size() != params_.size() || out.size() != params_.size()) {
    throw std::invalid_argument("ParameterSpace::write_features: shape mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out[i] = params_[i].numeric_value(config.level(i));
  }
}

std::vector<bool> ParameterSpace::categorical_mask() const {
  std::vector<bool> mask(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    mask[i] = params_[i].is_categorical();
  }
  return mask;
}

std::vector<std::size_t> ParameterSpace::cardinalities() const {
  std::vector<std::size_t> card(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    card[i] = params_[i].num_levels();
  }
  return card;
}

std::string ParameterSpace::describe(const Configuration& config) const {
  if (config.size() != params_.size()) {
    throw std::invalid_argument("ParameterSpace::describe: shape mismatch");
  }
  std::string out;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i) out += ", ";
    out += params_[i].name();
    out += '=';
    out += params_[i].label(config.level(i));
  }
  return out;
}

bool ParameterSpace::contains(const Configuration& config) const {
  if (config.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (config.level(i) >= params_[i].num_levels()) return false;
  }
  return true;
}

}  // namespace pwu::space
