#include "space/parameter.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pwu::space {

const char* to_string(ParamKind kind) {
  switch (kind) {
    case ParamKind::kIntRange: return "int";
    case ParamKind::kOrdinal: return "ordinal";
    case ParamKind::kCategorical: return "categorical";
    case ParamKind::kBoolean: return "boolean";
  }
  return "unknown";
}

Parameter::Parameter(std::string name, ParamKind kind,
                     std::vector<double> values,
                     std::vector<std::string> labels)
    : name_(std::move(name)),
      kind_(kind),
      values_(std::move(values)),
      labels_(std::move(labels)) {
  if (labels_.empty()) {
    throw std::invalid_argument("Parameter '" + name_ + "' has no levels");
  }
  if (values_.size() != labels_.size()) {
    throw std::invalid_argument("Parameter '" + name_ +
                                "': value/label count mismatch");
  }
}

Parameter Parameter::int_range(std::string name, long lo, long hi, long step) {
  if (step <= 0) throw std::invalid_argument("int_range: step must be > 0");
  if (hi < lo) throw std::invalid_argument("int_range: hi < lo");
  std::vector<double> values;
  std::vector<std::string> labels;
  for (long v = lo; v <= hi; v += step) {
    values.push_back(static_cast<double>(v));
    labels.push_back(std::to_string(v));
  }
  return Parameter(std::move(name), ParamKind::kIntRange, std::move(values),
                   std::move(labels));
}

Parameter Parameter::ordinal(std::string name, std::vector<double> values) {
  std::vector<std::string> labels;
  labels.reserve(values.size());
  for (double v : values) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      labels.push_back(std::to_string(static_cast<long long>(v)));
    } else {
      labels.push_back(std::to_string(v));
    }
  }
  return Parameter(std::move(name), ParamKind::kOrdinal, std::move(values),
                   std::move(labels));
}

Parameter Parameter::categorical(std::string name,
                                 std::vector<std::string> labels) {
  std::vector<double> values;
  values.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    values.push_back(static_cast<double>(i));
  }
  return Parameter(std::move(name), ParamKind::kCategorical, std::move(values),
                   std::move(labels));
}

Parameter Parameter::boolean(std::string name) {
  return Parameter(std::move(name), ParamKind::kBoolean, {0.0, 1.0},
                   {"false", "true"});
}

void Parameter::check_level(std::size_t level) const {
  if (level >= labels_.size()) {
    throw std::out_of_range("Parameter '" + name_ + "': level " +
                            std::to_string(level) + " out of range");
  }
}

double Parameter::numeric_value(std::size_t level) const {
  check_level(level);
  return values_[level];
}

const std::string& Parameter::label(std::size_t level) const {
  check_level(level);
  return labels_[level];
}

std::size_t Parameter::nearest_level(double value) const {
  if (kind_ == ParamKind::kCategorical) {
    throw std::logic_error("nearest_level on categorical parameter '" +
                           name_ + "'");
  }
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = std::abs(values_[i] - value);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

}  // namespace pwu::space
