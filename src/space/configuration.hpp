// A point in a parameter space: one level index per parameter.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace pwu::space {

class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<std::uint32_t> levels)
      : levels_(std::move(levels)) {}

  std::size_t size() const { return levels_.size(); }
  std::uint32_t level(std::size_t i) const { return levels_.at(i); }
  void set_level(std::size_t i, std::uint32_t level) { levels_.at(i) = level; }

  std::span<const std::uint32_t> levels() const { return levels_; }

  bool operator==(const Configuration& other) const = default;

  /// FNV-1a over the level vector; used for pool de-duplication.
  std::size_t hash() const;

 private:
  std::vector<std::uint32_t> levels_;
};

struct ConfigurationHash {
  std::size_t operator()(const Configuration& c) const { return c.hash(); }
};

}  // namespace pwu::space
