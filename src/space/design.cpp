#include "space/design.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pwu::space {

std::vector<Configuration> latin_hypercube(const ParameterSpace& space,
                                           std::size_t count,
                                           util::Rng& rng PWU_RNG_STREAM(design)) {
  const std::size_t dims = space.num_params();
  // For each dimension, build the stratified sequence of strata midpoints
  // mapped onto the parameter's levels, then shuffle it independently.
  std::vector<std::vector<std::uint32_t>> columns(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t levels = space.param(d).num_levels();
    auto& column = columns[d];
    column.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      // Jittered stratum position in [s/count, (s+1)/count).
      const double u =
          (static_cast<double>(s) + rng.uniform()) / static_cast<double>(count);
      auto level = static_cast<std::uint32_t>(
          std::min<std::size_t>(levels - 1,
                                static_cast<std::size_t>(
                                    u * static_cast<double>(levels))));
      column.push_back(level);
    }
    rng.shuffle(column);
  }
  std::vector<Configuration> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<std::uint32_t> levels(dims);
    for (std::size_t d = 0; d < dims; ++d) levels[d] = columns[d][s];
    out.emplace_back(std::move(levels));
  }
  return out;
}

}  // namespace pwu::space
