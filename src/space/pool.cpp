#include "space/pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/contracts.hpp"

namespace pwu::space {

std::vector<Configuration> sample_unique(const ParameterSpace& space,
                                         std::size_t count, util::Rng& rng) {
  if (static_cast<long double>(count) > space.size()) {
    throw std::invalid_argument(
        "sample_unique: requested more configurations than the space holds");
  }
  std::unordered_set<Configuration, ConfigurationHash> seen;
  seen.reserve(count * 2);
  std::vector<Configuration> out;
  out.reserve(count);
  // Rejection sampling; expected retries are negligible because autotuning
  // spaces are many orders of magnitude larger than the pool. A safety cap
  // guards degenerate tiny spaces.
  const std::size_t max_attempts = 100 * count + 10000;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "sample_unique: too many rejections (space too small relative to "
          "requested count)");
    }
    Configuration c = space.random_config(rng);
    if (seen.insert(c).second) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

PoolSplit make_pool_split(const ParameterSpace& space, std::size_t pool_size,
                          std::size_t test_size,
                          util::Rng& rng PWU_RNG_STREAM(pool_split)) {
  const std::size_t requested = pool_size + test_size;
  if (space.size() <= static_cast<long double>(requested)) {
    // Enumerable space: split the whole space in the requested proportion.
    std::vector<Configuration> everything = space.enumerate();
    rng.shuffle(everything);
    const double pool_fraction =
        static_cast<double>(pool_size) / static_cast<double>(requested);
    auto cut = static_cast<std::size_t>(
        pool_fraction * static_cast<double>(everything.size()));
    cut = std::clamp<std::size_t>(cut, 1, everything.size() - 1);
    PoolSplit split;
    split.pool.assign(everything.begin(),
                      everything.begin() + static_cast<std::ptrdiff_t>(cut));
    split.test.assign(everything.begin() + static_cast<std::ptrdiff_t>(cut),
                      everything.end());
    return split;
  }
  std::vector<Configuration> all = sample_unique(space, requested, rng);
  // `sample_unique` returns configurations in random draw order, so the
  // prefix/suffix split is itself a uniform split.
  PoolSplit split;
  split.pool.assign(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(pool_size));
  split.test.assign(all.begin() + static_cast<std::ptrdiff_t>(pool_size),
                    all.end());
  return split;
}

CandidatePool::CandidatePool(std::vector<Configuration> configs)
    : configs_(std::move(configs)) {}

Configuration CandidatePool::take(std::size_t i) {
  if (i >= configs_.size()) {
    throw std::out_of_range("CandidatePool::take: index out of range");
  }
  std::swap(configs_[i], configs_.back());
  Configuration taken = std::move(configs_.back());
  configs_.pop_back();
  return taken;
}

std::vector<Configuration> CandidatePool::take_many(
    std::vector<std::size_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<Configuration> taken;
  taken.reserve(indices.size());
  // Descending order: removing a larger index never disturbs a smaller one.
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    taken.push_back(take(*it));
  }
  return taken;
}

std::vector<std::size_t> CandidatePool::sample_indices(std::size_t k,
                                                       util::Rng& rng PWU_RNG_STREAM(sampling)) const {
  if (k > configs_.size()) {
    throw std::invalid_argument("CandidatePool::sample_indices: k > size");
  }
  return rng.sample_without_replacement(configs_.size(), k);
}

}  // namespace pwu::space
