#!/usr/bin/env bash
# One-command correctness gate:
#
#   scripts/check.sh [--jobs N]
#
#   1. pwu_lint        — flow-aware static analysis over the whole tree
#                        (lock-graph, blocking-under-lock, rng-stream-
#                        discipline, killpoint-safety + the line rules)
#                        plus the analyzer's own unit suite
#                        (`ctest --preset lint`)
#   2. asan-fast       — unit suite under Address/UB sanitizers + contracts
#   3. tsan-fast       — unit suite (incl. race stress tests) under
#                        ThreadSanitizer + contracts
#   4. chaos           — deterministic crash-injection harness: kill points
#                        mid-checkpoint-write and mid-batch, resume must be
#                        bit-identical (Release build, `ctest -L chaos`)
#   5. soak + fuzz     — overload soak harness under both sanitizers
#                        (`ctest -L soak` on the asan and tsan builds) plus a
#                        long seeded campaign of the protocol fuzzer
#   6. shard           — multi-process router chaos: real forked workers
#                        killed at armed kill points; the client-visible
#                        stream must stay bit-identical to an unkilled
#                        control fleet (`ctest -L shard`)
#   7. simd            — the full fast suite re-run with PWU_SIMD_LEVEL=
#                        scalar (Release and asan builds), so the scalar
#                        dispatch fallback stays tested on hosts whose CPUs
#                        would otherwise always take the AVX2 kernels
#   8. ha              — warm-standby replication and live ring growth:
#                        shadow promotion, staleness fallback, and
#                        mid-traffic session migration, all in-process
#                        (`ctest -L ha` on the Release and tsan builds)
#   9. netchaos        — seeded network-fault schedules (loss, duplication,
#                        reordering, corruption, truncation, partitions)
#                        against the pwu1 framing, idempotency windows, and
#                        fencing epochs; client streams must stay bit-exact
#                        and split-brain writes must be fenced (`ctest -L
#                        netchaos` on the Release and asan builds)
#
# Contracts (PWU_REQUIRE/PWU_ENSURE/PWU_ASSERT) are active in both sanitizer
# passes because those presets build Debug. Exits non-zero on the first
# failing gate.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
if [[ "${1:-}" == "--jobs" && -n "${2:-}" ]]; then
  jobs="$2"
fi

echo "== gate 1/9: pwu_lint (flow-aware) =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target pwu_lint >/dev/null
./build/tools/pwu_lint --root . --baseline tools/lint/pwu_lint.baseline
cmake --build --preset default -j "$jobs" --target pwu_tests >/dev/null
ctest --preset lint -j "$jobs"

echo "== gate 2/9: asan-fast =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs" >/dev/null
ctest --preset asan-fast -j "$jobs"

echo "== gate 3/9: tsan-fast =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" >/dev/null
ctest --preset tsan-fast -j "$jobs"

echo "== gate 4/9: chaos =="
cmake --build --preset default -j "$jobs" --target pwu_chaos_tests >/dev/null
ctest --preset chaos -j "$jobs"

echo "== gate 5/9: soak + fuzz =="
ctest --preset asan-soak -j "$jobs"
ctest --preset tsan-soak -j "$jobs"
cmake --build --preset default -j "$jobs" --target pwu_fuzz >/dev/null
./build/tools/pwu_fuzz --iters 20000 --seed 1

echo "== gate 6/9: shard (router failover chaos) =="
cmake --build --preset default -j "$jobs" --target pwu_shard_tests \
  --target pwu_serve >/dev/null
ctest --preset shard -j "$jobs"
ctest --preset asan-shard -j "$jobs"

echo "== gate 7/9: simd (scalar dispatch fallback) =="
cmake --build --preset default -j "$jobs" --target pwu_tests >/dev/null
ctest --preset simd -j "$jobs"
ctest --preset asan-simd -j "$jobs"

echo "== gate 8/9: ha (warm standby + ring growth) =="
cmake --build --preset default -j "$jobs" --target pwu_ha_tests >/dev/null
cmake --build --preset tsan -j "$jobs" --target pwu_ha_tests >/dev/null
ctest --preset ha -j "$jobs"
ctest --preset tsan-ha -j "$jobs"

echo "== gate 9/9: netchaos (fault injection vs framing + fencing) =="
cmake --build --preset default -j "$jobs" --target pwu_netchaos_tests \
  --target pwu_serve >/dev/null
cmake --build --preset asan -j "$jobs" --target pwu_netchaos_tests >/dev/null
ctest --preset netchaos -j "$jobs"
ctest --preset asan-netchaos -j "$jobs"

echo "check.sh: all correctness gates passed"
