# Empty compiler generated dependencies file for tune_kripke.
# This may be replaced when dependencies are built.
