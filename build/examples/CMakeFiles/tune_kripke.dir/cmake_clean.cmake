file(REMOVE_RECURSE
  "CMakeFiles/tune_kripke.dir/tune_kripke.cpp.o"
  "CMakeFiles/tune_kripke.dir/tune_kripke.cpp.o.d"
  "tune_kripke"
  "tune_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
