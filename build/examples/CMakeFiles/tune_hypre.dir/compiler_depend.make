# Empty compiler generated dependencies file for tune_hypre.
# This may be replaced when dependencies are built.
