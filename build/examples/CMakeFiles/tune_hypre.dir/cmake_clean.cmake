file(REMOVE_RECURSE
  "CMakeFiles/tune_hypre.dir/tune_hypre.cpp.o"
  "CMakeFiles/tune_hypre.dir/tune_hypre.cpp.o.d"
  "tune_hypre"
  "tune_hypre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_hypre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
