# Empty compiler generated dependencies file for micro_rf.
# This may be replaced when dependencies are built.
