file(REMOVE_RECURSE
  "CMakeFiles/micro_rf.dir/micro_rf.cpp.o"
  "CMakeFiles/micro_rf.dir/micro_rf.cpp.o.d"
  "micro_rf"
  "micro_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
