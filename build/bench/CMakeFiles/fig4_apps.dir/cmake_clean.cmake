file(REMOVE_RECURSE
  "CMakeFiles/fig4_apps.dir/fig4_apps.cpp.o"
  "CMakeFiles/fig4_apps.dir/fig4_apps.cpp.o.d"
  "fig4_apps"
  "fig4_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
