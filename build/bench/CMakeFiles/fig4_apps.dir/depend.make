# Empty dependencies file for fig4_apps.
# This may be replaced when dependencies are built.
