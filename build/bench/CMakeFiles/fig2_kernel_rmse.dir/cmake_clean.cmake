file(REMOVE_RECURSE
  "CMakeFiles/fig2_kernel_rmse.dir/fig2_kernel_rmse.cpp.o"
  "CMakeFiles/fig2_kernel_rmse.dir/fig2_kernel_rmse.cpp.o.d"
  "fig2_kernel_rmse"
  "fig2_kernel_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_kernel_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
