# Empty dependencies file for fig2_kernel_rmse.
# This may be replaced when dependencies are built.
