file(REMOVE_RECURSE
  "CMakeFiles/fig8_tuning.dir/fig8_tuning.cpp.o"
  "CMakeFiles/fig8_tuning.dir/fig8_tuning.cpp.o.d"
  "fig8_tuning"
  "fig8_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
