# Empty dependencies file for fig8_tuning.
# This may be replaced when dependencies are built.
