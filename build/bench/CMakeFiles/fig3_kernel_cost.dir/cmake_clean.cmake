file(REMOVE_RECURSE
  "CMakeFiles/fig3_kernel_cost.dir/fig3_kernel_cost.cpp.o"
  "CMakeFiles/fig3_kernel_cost.dir/fig3_kernel_cost.cpp.o.d"
  "fig3_kernel_cost"
  "fig3_kernel_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kernel_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
