# Empty dependencies file for fig6_alpha_sweep.
# This may be replaced when dependencies are built.
