# Empty dependencies file for fig5_rmse_vs_cost.
# This may be replaced when dependencies are built.
