file(REMOVE_RECURSE
  "CMakeFiles/fig5_rmse_vs_cost.dir/fig5_rmse_vs_cost.cpp.o"
  "CMakeFiles/fig5_rmse_vs_cost.dir/fig5_rmse_vs_cost.cpp.o.d"
  "fig5_rmse_vs_cost"
  "fig5_rmse_vs_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rmse_vs_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
