# Empty compiler generated dependencies file for table1_spaces.
# This may be replaced when dependencies are built.
