file(REMOVE_RECURSE
  "CMakeFiles/table1_spaces.dir/table1_spaces.cpp.o"
  "CMakeFiles/table1_spaces.dir/table1_spaces.cpp.o.d"
  "table1_spaces"
  "table1_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
