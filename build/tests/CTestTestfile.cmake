# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pwu_tests[1]_include.cmake")
add_test(cli_list "/root/repo/build/tools/pwu_run" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;50;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_tiny_experiment "/root/repo/build/tools/pwu_run" "--workload" "gesummv" "--strategies" "pwu,random" "--nmax" "20" "--pool" "120" "--test" "60" "--trees" "8" "--repeats" "1")
set_tests_properties(cli_tiny_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
