
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_active_learner.cpp" "tests/CMakeFiles/pwu_tests.dir/test_active_learner.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_active_learner.cpp.o.d"
  "/root/repo/tests/test_ascii_chart.cpp" "tests/CMakeFiles/pwu_tests.dir/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/test_configuration.cpp" "tests/CMakeFiles/pwu_tests.dir/test_configuration.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_configuration.cpp.o.d"
  "/root/repo/tests/test_convergence.cpp" "tests/CMakeFiles/pwu_tests.dir/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_convergence.cpp.o.d"
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/pwu_tests.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_csv_table.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/pwu_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_decision_tree.cpp" "tests/CMakeFiles/pwu_tests.dir/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_decision_tree.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/pwu_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_diverse_batch.cpp" "tests/CMakeFiles/pwu_tests.dir/test_diverse_batch.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_diverse_batch.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/pwu_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/pwu_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extended_kernels.cpp" "tests/CMakeFiles/pwu_tests.dir/test_extended_kernels.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_extended_kernels.cpp.o.d"
  "/root/repo/tests/test_gp.cpp" "tests/CMakeFiles/pwu_tests.dir/test_gp.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_gp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pwu_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kripke_hypre.cpp" "tests/CMakeFiles/pwu_tests.dir/test_kripke_hypre.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_kripke_hypre.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/pwu_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_logging_options.cpp" "tests/CMakeFiles/pwu_tests.dir/test_logging_options.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_logging_options.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/pwu_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/pwu_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_noise_executor.cpp" "tests/CMakeFiles/pwu_tests.dir/test_noise_executor.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_noise_executor.cpp.o.d"
  "/root/repo/tests/test_parameter.cpp" "tests/CMakeFiles/pwu_tests.dir/test_parameter.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_parameter.cpp.o.d"
  "/root/repo/tests/test_parameter_space.cpp" "tests/CMakeFiles/pwu_tests.dir/test_parameter_space.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_parameter_space.cpp.o.d"
  "/root/repo/tests/test_platform_cache.cpp" "tests/CMakeFiles/pwu_tests.dir/test_platform_cache.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_platform_cache.cpp.o.d"
  "/root/repo/tests/test_pool.cpp" "tests/CMakeFiles/pwu_tests.dir/test_pool.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_pool.cpp.o.d"
  "/root/repo/tests/test_random_forest.cpp" "tests/CMakeFiles/pwu_tests.dir/test_random_forest.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_random_forest.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/pwu_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/pwu_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_serialization.cpp" "tests/CMakeFiles/pwu_tests.dir/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_serialization.cpp.o.d"
  "/root/repo/tests/test_spapt_models.cpp" "tests/CMakeFiles/pwu_tests.dir/test_spapt_models.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_spapt_models.cpp.o.d"
  "/root/repo/tests/test_split.cpp" "tests/CMakeFiles/pwu_tests.dir/test_split.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_split.cpp.o.d"
  "/root/repo/tests/test_statistics.cpp" "tests/CMakeFiles/pwu_tests.dir/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_statistics.cpp.o.d"
  "/root/repo/tests/test_strategies.cpp" "tests/CMakeFiles/pwu_tests.dir/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_strategies.cpp.o.d"
  "/root/repo/tests/test_strategy_workload_matrix.cpp" "tests/CMakeFiles/pwu_tests.dir/test_strategy_workload_matrix.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_strategy_workload_matrix.cpp.o.d"
  "/root/repo/tests/test_surrogate.cpp" "tests/CMakeFiles/pwu_tests.dir/test_surrogate.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_surrogate.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/pwu_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/pwu_tests.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_transfer.cpp.o.d"
  "/root/repo/tests/test_tuner.cpp" "tests/CMakeFiles/pwu_tests.dir/test_tuner.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_tuner.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/pwu_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/pwu_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pwu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
