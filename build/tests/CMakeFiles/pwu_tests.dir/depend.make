# Empty dependencies file for pwu_tests.
# This may be replaced when dependencies are built.
