# Empty dependencies file for pwu_run.
# This may be replaced when dependencies are built.
