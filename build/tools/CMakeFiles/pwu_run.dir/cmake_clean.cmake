file(REMOVE_RECURSE
  "CMakeFiles/pwu_run.dir/pwu_run.cpp.o"
  "CMakeFiles/pwu_run.dir/pwu_run.cpp.o.d"
  "pwu_run"
  "pwu_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwu_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
