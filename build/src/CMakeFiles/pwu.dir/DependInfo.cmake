
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_learner.cpp" "src/CMakeFiles/pwu.dir/core/active_learner.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/active_learner.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "src/CMakeFiles/pwu.dir/core/convergence.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/convergence.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/pwu.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/pwu.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/pwu.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sampling_strategy.cpp" "src/CMakeFiles/pwu.dir/core/sampling_strategy.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/sampling_strategy.cpp.o.d"
  "/root/repo/src/core/strategies/best_performance.cpp" "src/CMakeFiles/pwu.dir/core/strategies/best_performance.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/best_performance.cpp.o.d"
  "/root/repo/src/core/strategies/biased_random.cpp" "src/CMakeFiles/pwu.dir/core/strategies/biased_random.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/biased_random.cpp.o.d"
  "/root/repo/src/core/strategies/diverse_batch.cpp" "src/CMakeFiles/pwu.dir/core/strategies/diverse_batch.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/diverse_batch.cpp.o.d"
  "/root/repo/src/core/strategies/epsilon_greedy.cpp" "src/CMakeFiles/pwu.dir/core/strategies/epsilon_greedy.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/epsilon_greedy.cpp.o.d"
  "/root/repo/src/core/strategies/expected_improvement.cpp" "src/CMakeFiles/pwu.dir/core/strategies/expected_improvement.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/expected_improvement.cpp.o.d"
  "/root/repo/src/core/strategies/max_uncertainty.cpp" "src/CMakeFiles/pwu.dir/core/strategies/max_uncertainty.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/max_uncertainty.cpp.o.d"
  "/root/repo/src/core/strategies/pbus.cpp" "src/CMakeFiles/pwu.dir/core/strategies/pbus.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/pbus.cpp.o.d"
  "/root/repo/src/core/strategies/pwu.cpp" "src/CMakeFiles/pwu.dir/core/strategies/pwu.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/pwu.cpp.o.d"
  "/root/repo/src/core/strategies/uniform_random.cpp" "src/CMakeFiles/pwu.dir/core/strategies/uniform_random.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/strategies/uniform_random.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/CMakeFiles/pwu.dir/core/surrogate.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/surrogate.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/CMakeFiles/pwu.dir/core/tuner.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/core/tuner.cpp.o.d"
  "/root/repo/src/gp/gaussian_process.cpp" "src/CMakeFiles/pwu.dir/gp/gaussian_process.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/gp/gaussian_process.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "src/CMakeFiles/pwu.dir/gp/kernel.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/gp/kernel.cpp.o.d"
  "/root/repo/src/gp/linalg.cpp" "src/CMakeFiles/pwu.dir/gp/linalg.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/gp/linalg.cpp.o.d"
  "/root/repo/src/rf/dataset.cpp" "src/CMakeFiles/pwu.dir/rf/dataset.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/rf/dataset.cpp.o.d"
  "/root/repo/src/rf/decision_tree.cpp" "src/CMakeFiles/pwu.dir/rf/decision_tree.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/rf/decision_tree.cpp.o.d"
  "/root/repo/src/rf/random_forest.cpp" "src/CMakeFiles/pwu.dir/rf/random_forest.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/rf/random_forest.cpp.o.d"
  "/root/repo/src/rf/split.cpp" "src/CMakeFiles/pwu.dir/rf/split.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/rf/split.cpp.o.d"
  "/root/repo/src/sim/cache_model.cpp" "src/CMakeFiles/pwu.dir/sim/cache_model.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/sim/cache_model.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/pwu.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/sim/executor.cpp.o.d"
  "/root/repo/src/sim/network_model.cpp" "src/CMakeFiles/pwu.dir/sim/network_model.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/sim/network_model.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/pwu.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/CMakeFiles/pwu.dir/sim/platform.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/sim/platform.cpp.o.d"
  "/root/repo/src/space/configuration.cpp" "src/CMakeFiles/pwu.dir/space/configuration.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/space/configuration.cpp.o.d"
  "/root/repo/src/space/design.cpp" "src/CMakeFiles/pwu.dir/space/design.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/space/design.cpp.o.d"
  "/root/repo/src/space/parameter.cpp" "src/CMakeFiles/pwu.dir/space/parameter.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/space/parameter.cpp.o.d"
  "/root/repo/src/space/parameter_space.cpp" "src/CMakeFiles/pwu.dir/space/parameter_space.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/space/parameter_space.cpp.o.d"
  "/root/repo/src/space/pool.cpp" "src/CMakeFiles/pwu.dir/space/pool.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/space/pool.cpp.o.d"
  "/root/repo/src/util/ascii_chart.cpp" "src/CMakeFiles/pwu.dir/util/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/pwu.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/pwu.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/pwu.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pwu.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "src/CMakeFiles/pwu.dir/util/statistics.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/statistics.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/pwu.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/pwu.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/workloads/hypre_model.cpp" "src/CMakeFiles/pwu.dir/workloads/hypre_model.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/hypre_model.cpp.o.d"
  "/root/repo/src/workloads/kripke_model.cpp" "src/CMakeFiles/pwu.dir/workloads/kripke_model.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/kripke_model.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/pwu.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/spapt/adi.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/adi.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/adi.cpp.o.d"
  "/root/repo/src/workloads/spapt/atax.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/atax.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/atax.cpp.o.d"
  "/root/repo/src/workloads/spapt/bicg.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/bicg.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/bicg.cpp.o.d"
  "/root/repo/src/workloads/spapt/correlation.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/correlation.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/correlation.cpp.o.d"
  "/root/repo/src/workloads/spapt/covariance.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/covariance.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/covariance.cpp.o.d"
  "/root/repo/src/workloads/spapt/dgemv3.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/dgemv3.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/dgemv3.cpp.o.d"
  "/root/repo/src/workloads/spapt/fdtd.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/fdtd.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/fdtd.cpp.o.d"
  "/root/repo/src/workloads/spapt/gemver.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/gemver.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/gemver.cpp.o.d"
  "/root/repo/src/workloads/spapt/gesummv.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/gesummv.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/gesummv.cpp.o.d"
  "/root/repo/src/workloads/spapt/jacobi.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/jacobi.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/jacobi.cpp.o.d"
  "/root/repo/src/workloads/spapt/lu.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/lu.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/lu.cpp.o.d"
  "/root/repo/src/workloads/spapt/mm.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/mm.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/mm.cpp.o.d"
  "/root/repo/src/workloads/spapt/mvt.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/mvt.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/mvt.cpp.o.d"
  "/root/repo/src/workloads/spapt/seidel.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/seidel.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/seidel.cpp.o.d"
  "/root/repo/src/workloads/spapt/spapt_common.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/spapt_common.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/spapt_common.cpp.o.d"
  "/root/repo/src/workloads/spapt/stencil3d.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/stencil3d.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/stencil3d.cpp.o.d"
  "/root/repo/src/workloads/spapt/syr2k.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/syr2k.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/syr2k.cpp.o.d"
  "/root/repo/src/workloads/spapt/syrk.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/syrk.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/syrk.cpp.o.d"
  "/root/repo/src/workloads/spapt/trmm.cpp" "src/CMakeFiles/pwu.dir/workloads/spapt/trmm.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/spapt/trmm.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/CMakeFiles/pwu.dir/workloads/synthetic.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/synthetic.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/pwu.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/pwu.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
