file(REMOVE_RECURSE
  "libpwu.a"
)
