# Empty compiler generated dependencies file for pwu.
# This may be replaced when dependencies are built.
