// Fig. 9: where do PBUS and PWU actually sample? Scatter of the selected
// configurations in the (predicted performance, uncertainty) plane for the
// atax kernel, against the pool distribution.
//
// Expected shape (paper): PBUS's picks pile up in the low-uncertainty
// corner of the high-performance band (redundant by the time they are
// picked); PWU's picks spread across higher-uncertainty configurations
// while staying biased toward high performance.

#include "bench_common.hpp"

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/ascii_chart.hpp"
#include "util/statistics.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 9 — selected-sample distribution, PBUS vs PWU",
                      opts);

  const auto workload = workloads::make_workload("atax");
  util::Rng rng(opts.seed);
  const auto split = space::make_pool_split(
      workload->space(), opts.pool_size, opts.test_size, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);

  core::LearnerConfig lc;
  lc.n_init = opts.n_init;
  lc.n_max = opts.n_max;
  lc.forest.num_trees = opts.num_trees;
  lc.eval_every = opts.n_max;
  core::ActiveLearner learner(*workload, lc);

  struct Run {
    const char* label;
    core::StrategyPtr strategy;
  };
  Run runs[2] = {{"PBUS", core::make_pbus(0.10)},
                 {"PWU", core::make_pwu(0.01)}};

  for (auto& run : runs) {
    util::Rng run_rng(opts.seed + 7);
    const auto result =
        learner.run(*run.strategy, split.pool, test, run_rng);

    // Pool cloud: predictions of the final model over the test set.
    util::ChartSeries pool_cloud{"pool", {}, {}, '.'};
    for (std::size_t i = 0; i < test.features.num_rows(); ++i) {
      const auto stats = result.model->predict_stats(test.features.row(i));
      pool_cloud.x.push_back(stats.mean);
      pool_cloud.y.push_back(stats.stddev);
    }
    util::ChartSeries picks{"selected", {}, {}, 'x'};
    std::vector<double> pick_mu, pick_sigma;
    for (const auto& sel : result.selections) {
      picks.x.push_back(sel.predicted_mean);
      picks.y.push_back(sel.predicted_stddev);
      pick_mu.push_back(sel.predicted_mean);
      pick_sigma.push_back(sel.predicted_stddev);
    }

    util::ChartOptions chart;
    chart.title = std::string("atax selections via ") + run.label;
    chart.x_label = "predicted execution time (s)";
    chart.y_label = "uncertainty (s)";
    std::cout << "\n" << util::render_scatter(pool_cloud, picks, chart);
    std::cout << run.label << " picks: mean predicted time = "
              << util::TextTable::cell(util::mean(pick_mu), 4)
              << " s, mean uncertainty = "
              << util::TextTable::cell_sci(util::mean(pick_sigma))
              << " (n=" << pick_mu.size() << ")\n";
  }
  std::cout << "\nshape check: PWU's mean pick uncertainty should exceed "
               "PBUS's (exploration), with both biased toward fast "
               "configurations.\n";
  return 0;
}
