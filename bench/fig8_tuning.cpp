// Fig. 8: tuning the atax kernel directly (true annotator: each pick is an
// actual program execution) vs with the learned surrogate as annotator
// (predictions stand in for measurements).
//
// Expected shape (paper): the surrogate-annotated tuner's best-so-far curve
// is comparable to — occasionally better than — ground-truth tuning, at
// negligible annotation cost.

#include "bench_common.hpp"

#include "core/active_learner.hpp"
#include "core/tuner.hpp"
#include "space/pool.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 8 — direct tuning vs surrogate tuning (atax)",
                      opts);

  const auto workload = workloads::make_workload("atax");
  util::Rng rng(opts.seed);

  // Phase 1: learn the surrogate with PWU active learning.
  const auto split = space::make_pool_split(
      workload->space(), opts.pool_size, opts.test_size, rng);
  const auto test = core::build_test_set(*workload, split.test, rng);
  core::LearnerConfig lc;
  lc.n_init = opts.n_init;
  lc.n_max = opts.n_max;
  lc.forest.num_trees = opts.num_trees;
  lc.eval_every = opts.n_max;  // only the final model matters here
  core::ActiveLearner learner(*workload, lc);
  std::cout << "training surrogate with PWU (n_max=" << lc.n_max << ")...\n";
  const auto learned =
      learner.run(*core::make_pwu(0.05), split.pool, test, rng);

  // Phase 2: two tuners over a fresh candidate set.
  core::TunerConfig tc;
  tc.n_init = 10;
  tc.iterations = std::min<std::size_t>(60, opts.test_size / 4);
  tc.forest.num_trees = opts.num_trees;
  util::Rng tuner_rng_a(opts.seed + 1);
  util::Rng tuner_rng_b(opts.seed + 1);
  const auto direct =
      core::tune_direct(*workload, split.test, tc, tuner_rng_a);
  const auto surrogate = core::tune_with_surrogate(
      *workload, *learned.model, split.test, tc, tuner_rng_b);

  util::TextTable table;
  table.set_header({"iteration", "direct best (s)", "surrogate best (s)"});
  util::ChartSeries direct_series{"direct (true annotator)", {}, {}, 'd'};
  util::ChartSeries surrogate_series{"surrogate annotator", {}, {}, 's'};
  for (std::size_t i = 0; i < direct.best_true_time.size(); ++i) {
    direct_series.x.push_back(static_cast<double>(i + 1));
    direct_series.y.push_back(direct.best_true_time[i]);
    surrogate_series.x.push_back(static_cast<double>(i + 1));
    surrogate_series.y.push_back(surrogate.best_true_time[i]);
    if ((i + 1) % 10 == 0 || i + 1 == direct.best_true_time.size()) {
      table.add_row({std::to_string(i + 1),
                     util::TextTable::cell(direct.best_true_time[i], 4),
                     util::TextTable::cell(surrogate.best_true_time[i], 4)});
    }
  }
  table.print(std::cout);

  util::ChartOptions chart;
  chart.title = "best-so-far true execution time (atax)";
  chart.x_label = "tuning iteration";
  chart.y_label = "best time (s)";
  std::cout << util::render_chart({direct_series, surrogate_series}, chart);

  std::cout << "direct tuner evaluations of the real program:   "
            << direct.best_true_time.size() << "\n"
            << "surrogate tuner evaluations of the real program: 0 "
               "(annotations are model predictions)\n"
            << "final best (direct):    "
            << util::TextTable::cell(direct.best_true_time.back(), 4)
            << " s\nfinal best (surrogate): "
            << util::TextTable::cell(surrogate.best_true_time.back(), 4)
            << " s\n";
  return 0;
}
