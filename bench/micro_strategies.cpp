// google-benchmark microbenchmarks for the sampling strategies' selection
// step — O(pool) scoring plus a partial sort; negligible next to model
// refits, verified here.

#include <benchmark/benchmark.h>

#include "core/sampling_strategy.hpp"
#include "util/rng.hpp"

namespace {

using pwu::core::PoolPrediction;

PoolPrediction make_prediction(std::size_t n) {
  pwu::util::Rng rng(1);
  PoolPrediction p;
  p.mean.resize(n);
  p.stddev.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.mean[i] = rng.uniform(0.01, 2.0);
    p.stddev[i] = rng.uniform(0.0, 0.2);
  }
  return p;
}

void run_strategy(benchmark::State& state, const std::string& name) {
  const auto pool = static_cast<std::size_t>(state.range(0));
  const PoolPrediction p = make_prediction(pool);
  const auto strategy = pwu::core::make_strategy(name, 0.01);
  pwu::util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->select(p, 1, rng).front());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool));
}

void BM_SelectPwu(benchmark::State& state) { run_strategy(state, "pwu"); }
void BM_SelectPbus(benchmark::State& state) { run_strategy(state, "pbus"); }
void BM_SelectMaxU(benchmark::State& state) { run_strategy(state, "maxu"); }
void BM_SelectBrs(benchmark::State& state) { run_strategy(state, "brs"); }

BENCHMARK(BM_SelectPwu)->Arg(1000)->Arg(7000)->Arg(50000);
BENCHMARK(BM_SelectPbus)->Arg(1000)->Arg(7000)->Arg(50000);
BENCHMARK(BM_SelectMaxU)->Arg(1000)->Arg(7000)->Arg(50000);
BENCHMARK(BM_SelectBrs)->Arg(1000)->Arg(7000)->Arg(50000);

void BM_PwuScores(benchmark::State& state) {
  const auto pool = static_cast<std::size_t>(state.range(0));
  const PoolPrediction p = make_prediction(pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pwu::core::pwu_scores(p, 0.01).front());
  }
}
BENCHMARK(BM_PwuScores)->Arg(7000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
