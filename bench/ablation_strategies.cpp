// Ablation (beyond the paper): the PWU family itself.
//   cv        = PWU at alpha 0 (coefficient of variation — pure risk/return)
//   pwu       = the paper's alpha = 0.01 operating point
//   maxu      = PWU at alpha 1 (pure uncertainty)
//   egreedy   = PWU + 10% uniform exploration
// This isolates how much of PWU's win comes from the performance weighting
// exponent vs from epsilon-style exploration.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Ablation — PWU family (alpha limits, epsilon-greedy)",
                      opts);

  const double alpha = 0.01;
  const auto spec = bench::spec_from_options(
      opts, {"pwu", "cv", "maxu", "egreedy", "ei"}, alpha);

  for (const std::string name : {"atax", "mm"}) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    const auto result = core::run_experiment(*workload, spec);
    std::cout << "\n--- " << name << " ---\n";
    core::print_rmse_chart(std::cout, result, "PWU family on " + name);
    core::write_series_csv(opts.out_dir, result, "ablation_family");
    std::cout << "final RMSE:";
    for (const auto& series : result.series) {
      std::cout << "  " << series.strategy << "="
                << util::TextTable::cell_sci(series.final_rmse());
    }
    std::cout << "\n";
  }
  return 0;
}
