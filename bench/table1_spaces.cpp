// Reproduces the paper's parameter/platform tables:
//   Table I   — ADI compilation-parameter layout
//   Table II  — kripke parameters
//   Table III — hypre parameters
//   Table IV  — node configuration of Platforms A and B
// plus the Section III-A kernel inventory (parameter counts and space
// sizes for all 12 SPAPT problems).

#include <iostream>
#include <map>

#include "sim/platform.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using pwu::util::TextTable;

void print_parameter_table(const std::string& title,
                           const pwu::space::ParameterSpace& space) {
  std::cout << "\n" << title << "\n";
  TextTable table;
  table.set_header({"name", "type", "#levels", "values"});
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const auto& p = space.param(i);
    std::string values;
    const std::size_t shown = std::min<std::size_t>(p.num_levels(), 8);
    for (std::size_t l = 0; l < shown; ++l) {
      if (l) values += ", ";
      values += p.label(l);
    }
    if (shown < p.num_levels()) values += ", ...";
    table.add_row({p.name(), pwu::space::to_string(p.kind()),
                   std::to_string(p.num_levels()), values});
  }
  table.print(std::cout);
  std::cout << "space size: 10^" << TextTable::cell(space.log10_size(), 2)
            << " configurations\n";
}

void print_grouped_adi_table(const pwu::space::ParameterSpace& space) {
  // Table I groups parameters by type the way the paper does.
  std::cout << "\nTable I: Compilation parameters of ADI kernel\n";
  struct Group {
    std::size_t count = 0;
    std::string values;
  };
  std::map<std::string, Group> groups;
  auto group_of = [](const std::string& name) -> std::string {
    if (name.rfind("T", 0) == 0 && name.size() <= 3) return "tile";
    if (name.rfind("U", 0) == 0) return "unrolljam";
    if (name.rfind("RT", 0) == 0) return "regtile";
    if (name.rfind("SCREP", 0) == 0) return "scalarreplace";
    return "vector";
  };
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const auto& p = space.param(i);
    auto& g = groups[group_of(p.name())];
    ++g.count;
    if (g.values.empty()) {
      const std::size_t shown = std::min<std::size_t>(p.num_levels(), 7);
      for (std::size_t l = 0; l < shown; ++l) {
        if (l) g.values += ", ";
        g.values += p.label(l);
      }
      if (shown < p.num_levels()) g.values += ", ..., " + p.label(p.num_levels() - 1);
    }
  }
  TextTable table;
  table.set_header({"Type", "Number", "Values"});
  for (const char* key :
       {"tile", "unrolljam", "regtile", "scalarreplace", "vector"}) {
    const auto& g = groups.at(key);
    table.add_row({key, std::to_string(g.count), g.values});
  }
  table.print(std::cout);
}

void print_platform_table() {
  std::cout << "\nTable IV: Node configuration of two platforms\n";
  const auto a = pwu::sim::platform_a();
  const auto b = pwu::sim::platform_b();
  TextTable table;
  table.set_header({"Specification", "Platform A", "Platform B"});
  table.add_row({"CPU type", a.cpu, b.cpu});
  table.add_row({"CPU frequency", TextTable::cell(a.freq_ghz, 1) + "GHz",
                 TextTable::cell(b.freq_ghz, 1) + "GHz"});
  table.add_row({"#core", std::to_string(a.cores), std::to_string(b.cores)});
  table.add_row({"memory", TextTable::cell(a.memory_gib, 0) + "GB",
                 TextTable::cell(b.memory_gib, 0) + "GB"});
  table.add_row({"network", "-", "100Gbps OPA"});
  table.add_row({"L1/L2/L3", TextTable::cell(a.l1_kib, 0) + "KiB/" +
                                 TextTable::cell(a.l2_kib, 0) + "KiB/" +
                                 TextTable::cell(a.l3_mib, 0) + "MiB",
                 TextTable::cell(b.l1_kib, 0) + "KiB/" +
                     TextTable::cell(b.l2_kib, 0) + "KiB/" +
                     TextTable::cell(b.l3_mib, 0) + "MiB"});
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Tables I-IV: benchmark parameter spaces and platforms\n";

  const auto adi = pwu::workloads::make_workload("adi");
  print_grouped_adi_table(adi->space());
  print_parameter_table("Table I (expanded): ADI parameters", adi->space());

  const auto kripke = pwu::workloads::make_workload("kripke");
  print_parameter_table("Table II: Parameters of kripke", kripke->space());

  const auto hypre = pwu::workloads::make_workload("hypre");
  print_parameter_table("Table III: Parameters of hypre", hypre->space());

  print_platform_table();

  std::cout << "\nSection III-A: SPAPT kernel inventory\n";
  TextTable inventory;
  inventory.set_header({"kernel", "#params", "log10(|space|)"});
  for (const auto& name : pwu::workloads::kernel_names()) {
    const auto w = pwu::workloads::make_workload(name);
    inventory.add_row({name, std::to_string(w->space().num_params()),
                       TextTable::cell(w->space().log10_size(), 1)});
  }
  inventory.print(std::cout);
  return 0;
}
