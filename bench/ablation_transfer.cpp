// Ablation (the paper's Section VI future work): model portability.
// Learn atax on "platform A", then model the warped platform variant of
// the same kernel with and without warm-starting from the source samples.
//
// Expected shape: the warm-started learner starts at a far lower error and
// holds an advantage until the from-scratch learner has amassed enough
// target samples; the gap at small budgets is the portability win.

#include "bench_common.hpp"

#include "core/active_learner.hpp"
#include "space/pool.hpp"
#include "util/ascii_chart.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner(
      "Ablation — transfer: warm-started vs from-scratch modeling", opts);

  const auto source = workloads::make_workload("atax");
  const auto target = workloads::make_platform_variant(
      workloads::make_workload("atax"));
  std::cout << "source: " << source->name() << "  ->  target: "
            << target->name() << " (same space, warped time surface)\n";

  util::Rng rng(opts.seed);

  // Label source samples once (in deployment these already exist from
  // tuning the source platform).
  const auto& s = source->space();
  rf::Dataset warm(s.num_params(), s.categorical_mask(), s.cardinalities());
  const std::size_t source_samples = opts.n_max;
  for (std::size_t i = 0; i < source_samples; ++i) {
    const auto c = s.random_config(rng);
    warm.add(s.features(c), source->measure(c, rng, 1));
  }
  std::cout << "warm-start pool: " << source_samples
            << " source-task samples (zero target cost)\n\n";

  const auto split = space::make_pool_split(target->space(), opts.pool_size,
                                            opts.test_size, rng);
  const auto test = core::build_test_set(*target, split.test, rng);

  core::LearnerConfig cfg;
  cfg.n_init = opts.n_init;
  cfg.n_max = opts.n_max;
  cfg.forest.num_trees = opts.num_trees;
  cfg.eval_every = opts.eval_every;
  cfg.eval_alphas = {0.05};
  core::ActiveLearner learner(*target, cfg);

  util::Rng rng_cold(opts.seed + 1), rng_warm(opts.seed + 1);
  const auto cold =
      learner.run(*core::make_pwu(0.05), split.pool, test, rng_cold);
  const auto warmed = learner.run_warm(*core::make_pwu(0.05), split.pool,
                                       test, warm, rng_warm);

  util::TextTable table;
  table.set_header(
      {"target #samples", "from-scratch RMSE", "warm-start RMSE"});
  util::ChartSeries cold_series{"from scratch", {}, {}, 'c'};
  util::ChartSeries warm_series{"warm start", {}, {}, 'w'};
  const std::size_t points =
      std::min(cold.trace.size(), warmed.trace.size());
  for (std::size_t i = 0; i < points; ++i) {
    table.add_row(
        {std::to_string(cold.trace[i].num_samples),
         util::TextTable::cell_sci(cold.trace[i].top_alpha_rmse[0]),
         util::TextTable::cell_sci(warmed.trace[i].top_alpha_rmse[0])});
    cold_series.x.push_back(
        static_cast<double>(cold.trace[i].num_samples));
    cold_series.y.push_back(cold.trace[i].top_alpha_rmse[0]);
    warm_series.x.push_back(
        static_cast<double>(warmed.trace[i].num_samples));
    warm_series.y.push_back(warmed.trace[i].top_alpha_rmse[0]);
  }
  table.print(std::cout);

  util::ChartOptions chart;
  chart.title = "transfer to " + target->name() + ": top-5% RMSE";
  chart.x_label = "target samples";
  chart.y_label = "RMSE";
  chart.log_y = true;
  std::cout << util::render_chart({cold_series, warm_series}, chart);

  std::cout << "cold-start error at first evaluation: "
            << util::TextTable::cell_sci(cold.trace.front().top_alpha_rmse[0])
            << "\nwarm-start error at first evaluation: "
            << util::TextTable::cell_sci(
                   warmed.trace.front().top_alpha_rmse[0])
            << "\n";
  return 0;
}
