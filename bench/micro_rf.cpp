// google-benchmark microbenchmarks for the random-forest substrate: fit and
// predict cost as functions of training-set size, tree count, and feature
// count — the quantities that dominate the active-learning loop's own
// overhead (Algorithm 1 refits from scratch every iteration).

#include <benchmark/benchmark.h>

#include "rf/random_forest.hpp"
#include "util/rng.hpp"

namespace {

using pwu::rf::Dataset;
using pwu::rf::ForestConfig;
using pwu::rf::RandomForest;

Dataset make_data(std::size_t rows, std::size_t features,
                  std::uint64_t seed) {
  pwu::util::Rng rng(seed);
  Dataset data(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    double label = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.uniform(0.0, 10.0);
      label += (f % 3 == 0 ? row[f] * row[f] : row[f]);
    }
    data.add(row, label);
  }
  return data;
}

void BM_ForestFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto trees = static_cast<std::size_t>(state.range(1));
  const Dataset data = make_data(rows, 12, 1);
  ForestConfig cfg;
  cfg.num_trees = trees;
  for (auto _ : state) {
    pwu::util::Rng rng(2);
    RandomForest forest;
    forest.fit(data, cfg, rng);
    benchmark::DoNotOptimize(forest.num_trees());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ForestFit)
    ->Args({100, 25})
    ->Args({500, 25})
    ->Args({500, 50})
    ->Args({2000, 50})
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredictStats(benchmark::State& state) {
  const auto trees = static_cast<std::size_t>(state.range(0));
  const Dataset data = make_data(500, 12, 3);
  ForestConfig cfg;
  cfg.num_trees = trees;
  pwu::util::Rng rng(4);
  RandomForest forest;
  forest.fit(data, cfg, rng);
  const std::vector<double> row(12, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_stats(row).stddev);
  }
}
BENCHMARK(BM_ForestPredictStats)->Arg(10)->Arg(50)->Arg(200);

void BM_PoolPrediction(benchmark::State& state) {
  // The per-iteration cost of scoring a 7000-strong pool (paper scale).
  const auto pool = static_cast<std::size_t>(state.range(0));
  const Dataset data = make_data(500, 12, 5);
  ForestConfig cfg;
  cfg.num_trees = 50;
  pwu::util::Rng rng(6);
  RandomForest forest;
  forest.fit(data, cfg, rng);
  std::vector<std::vector<double>> rows;
  pwu::util::Rng row_rng(7);
  for (std::size_t i = 0; i < pool; ++i) {
    std::vector<double> row(12);
    for (auto& v : row) v = row_rng.uniform(0.0, 10.0);
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_stats_batch(rows).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool));
}
BENCHMARK(BM_PoolPrediction)->Arg(1000)->Arg(7000)->Unit(
    benchmark::kMillisecond);

void BM_FeatureCountScaling(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  const Dataset data = make_data(400, features, 8);
  ForestConfig cfg;
  cfg.num_trees = 25;
  for (auto _ : state) {
    pwu::util::Rng rng(9);
    RandomForest forest;
    forest.fit(data, cfg, rng);
    benchmark::DoNotOptimize(forest.total_nodes());
  }
}
BENCHMARK(BM_FeatureCountScaling)
    ->Arg(8)    // jacobi
    ->Arg(20)   // adi
    ->Arg(38)   // dgemv3
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
