// Random-forest hot-path regression harness.
//
// Measures the two costs that dominate the active-learning loop — refitting
// the forest from scratch and scoring the candidate pool — at the paper's
// scale (Section III: pools of O(10^4) configurations), and emits the
// numbers as BENCH_rf.json so perf regressions show up in review diffs.
//
// Three variants are timed in one binary:
//   fit        the presorted-column fitter (2000 x 12 rows, 50 trees)
//   reference  per-row tree walks over the original node tables ("before")
//   flat       the blocked FlatForest engine ("after", what predict_stats
//              actually routes through)
// plus the bit-exactness check that flat == reference on every pool row.
// The seed_baseline_* constants are the pre-overhaul numbers measured on
// the same container (single-threaded), kept for before/after context.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rf/random_forest.hpp"
#include "util/rng.hpp"

namespace {

using pwu::rf::Dataset;
using pwu::rf::FeatureMatrix;
using pwu::rf::ForestConfig;
using pwu::rf::PredictionStats;
using pwu::rf::RandomForest;

// Pre-overhaul (seed) timings of this same harness's workloads, measured
// single-threaded on the reference container with the pointer-walk engine.
constexpr double kSeedFitMs = 221.701;
constexpr double kSeedPredictMs = 452.810;

Dataset make_data(std::size_t rows, std::size_t features,
                  std::uint64_t seed) {
  pwu::util::Rng rng(seed);
  Dataset data(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    double label = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.uniform(0.0, 10.0);
      label += (f % 3 == 0 ? row[f] * row[f] : row[f]);
    }
    data.add(row, label);
  }
  return data;
}

FeatureMatrix make_pool(std::size_t rows, std::size_t features,
                        std::uint64_t seed) {
  pwu::util::Rng rng(seed);
  FeatureMatrix pool = FeatureMatrix::with_capacity(features, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : pool.append_row()) v = rng.uniform(0.0, 10.0);
  }
  return pool;
}

/// Best-of-`repeats` wall time of `body`, in milliseconds.
template <typename Fn>
double time_best_ms(int repeats, Fn&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_rf.json";

  // ---- fit: 2000 x 12 rows, 50 trees (single-threaded) ----
  const Dataset fit_data = make_data(2000, 12, 1);
  ForestConfig fit_cfg;
  fit_cfg.num_trees = 50;
  volatile std::size_t sink = 0;
  const double fit_ms = time_best_ms(5, [&] {
    pwu::util::Rng rng(2);
    RandomForest forest;
    forest.fit(fit_data, fit_cfg, rng);
    sink = forest.num_trees();
  });

  // ---- batch predict_stats: 200 trees, 10k-row pool ----
  const Dataset train = make_data(500, 12, 3);
  ForestConfig predict_cfg;
  predict_cfg.num_trees = 200;
  pwu::util::Rng fit_rng(4);
  RandomForest forest;
  forest.fit(train, predict_cfg, fit_rng);

  const std::size_t pool_rows = 10000;
  const FeatureMatrix pool = make_pool(pool_rows, 12, 7);

  std::vector<PredictionStats> flat_out;
  const double flat_ms = time_best_ms(5, [&] {
    flat_out = forest.predict_stats_batch(pool);
  });

  std::vector<PredictionStats> ref_out(pool_rows);
  const double ref_ms = time_best_ms(3, [&] {
    for (std::size_t i = 0; i < pool_rows; ++i) {
      ref_out[i] = forest.predict_stats_reference(pool.row(i));
    }
  });

  bool bit_exact = true;
  for (std::size_t i = 0; i < pool_rows; ++i) {
    if (flat_out[i].mean != ref_out[i].mean ||
        flat_out[i].variance != ref_out[i].variance) {
      bit_exact = false;
      break;
    }
  }

  const double flat_rows_per_sec = 1000.0 * pool_rows / flat_ms;
  const double ref_rows_per_sec = 1000.0 * pool_rows / ref_ms;

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n"
       << "  \"fit\": {\n"
       << "    \"rows\": 2000, \"features\": 12, \"trees\": 50,\n"
       << "    \"ms\": " << fit_ms << ",\n"
       << "    \"seed_baseline_ms\": " << kSeedFitMs << ",\n"
       << "    \"speedup_vs_seed\": " << kSeedFitMs / fit_ms << "\n"
       << "  },\n"
       << "  \"predict_stats_batch\": {\n"
       << "    \"pool_rows\": " << pool_rows << ", \"trees\": 200,\n"
       << "    \"flat_ms\": " << flat_ms << ",\n"
       << "    \"flat_rows_per_sec\": " << flat_rows_per_sec << ",\n"
       << "    \"reference_ms\": " << ref_ms << ",\n"
       << "    \"reference_rows_per_sec\": " << ref_rows_per_sec << ",\n"
       << "    \"seed_baseline_ms\": " << kSeedPredictMs << ",\n"
       << "    \"speedup_vs_reference\": " << ref_ms / flat_ms << ",\n"
       << "    \"speedup_vs_seed\": " << kSeedPredictMs / flat_ms << "\n"
       << "  },\n"
       << "  \"bit_exact\": " << (bit_exact ? "true" : "false") << "\n"
       << "}\n";
  json.close();

  std::cout << "fit(2000x12, 50 trees):          " << fit_ms << " ms (seed "
            << kSeedFitMs << " ms)\n"
            << "predict_stats(10k pool, 200t):\n"
            << "  flat      " << flat_ms << " ms  (" << flat_rows_per_sec
            << " rows/s)\n"
            << "  reference " << ref_ms << " ms  (" << ref_rows_per_sec
            << " rows/s)\n"
            << "  seed      " << kSeedPredictMs << " ms\n"
            << "  flat vs reference: " << ref_ms / flat_ms << "x, vs seed: "
            << kSeedPredictMs / flat_ms << "x\n"
            << "bit-exact flat == reference: " << (bit_exact ? "yes" : "NO")
            << "\nwrote " << out_path << "\n";
  return bit_exact ? 0 : 1;
}
