// Random-forest hot-path regression harness.
//
// Measures the two costs that dominate the active-learning loop — refitting
// the forest from scratch and scoring the candidate pool — at the paper's
// scale (Section III: pools of O(10^4) configurations), and emits the
// numbers as BENCH_rf.json so perf regressions show up in review diffs.
//
// Three variants are timed in one binary:
//   fit        the presorted-column fitter (2000 x 12 rows, 50 trees)
//   reference  per-row tree walks over the original node tables ("before")
//   flat       the blocked FlatForest engine ("after", what predict_stats
//              actually routes through)
// plus the bit-exactness check that flat == reference on every pool row.
// The seed_baseline_* constants are the pre-overhaul numbers measured on
// the same container (single-threaded), kept for before/after context.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rf/quantized_layout.hpp"
#include "rf/random_forest.hpp"
#include "rf/simd_eval.hpp"
#include "util/rng.hpp"

namespace {

using pwu::rf::Dataset;
using pwu::rf::FeatureMatrix;
using pwu::rf::ForestConfig;
using pwu::rf::PredictionStats;
using pwu::rf::RandomForest;

// Pre-overhaul (seed) timings of this same harness's workloads, measured
// single-threaded on the reference container with the pointer-walk engine.
constexpr double kSeedFitMs = 221.701;
constexpr double kSeedPredictMs = 452.810;

Dataset make_data(std::size_t rows, std::size_t features,
                  std::uint64_t seed) {
  pwu::util::Rng rng(seed);
  Dataset data(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    double label = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.uniform(0.0, 10.0);
      label += (f % 3 == 0 ? row[f] * row[f] : row[f]);
    }
    data.add(row, label);
  }
  return data;
}

FeatureMatrix make_pool(std::size_t rows, std::size_t features,
                        std::uint64_t seed) {
  pwu::util::Rng rng(seed);
  FeatureMatrix pool = FeatureMatrix::with_capacity(features, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : pool.append_row()) v = rng.uniform(0.0, 10.0);
  }
  return pool;
}

/// Best-of-`repeats` wall time of `body`, in milliseconds.
template <typename Fn>
double time_best_ms(int repeats, Fn&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_rf.json";

  // ---- fit: 2000 x 12 rows, 50 trees (single-threaded) ----
  const Dataset fit_data = make_data(2000, 12, 1);
  ForestConfig fit_cfg;
  fit_cfg.num_trees = 50;
  volatile std::size_t sink = 0;
  const double fit_ms = time_best_ms(5, [&] {
    pwu::util::Rng rng(2);
    RandomForest forest;
    forest.fit(fit_data, fit_cfg, rng);
    sink = forest.num_trees();
  });

  // ---- batch predict_stats: 200 trees, 10k-row pool ----
  const Dataset train = make_data(500, 12, 3);
  ForestConfig predict_cfg;
  predict_cfg.num_trees = 200;
  pwu::util::Rng fit_rng(4);
  RandomForest forest;
  forest.fit(train, predict_cfg, fit_rng);

  const std::size_t pool_rows = 10000;
  const FeatureMatrix pool = make_pool(pool_rows, 12, 7);

  std::vector<PredictionStats> flat_out;
  const double flat_ms = time_best_ms(5, [&] {
    flat_out = forest.predict_stats_batch(pool);
  });

  std::vector<PredictionStats> ref_out(pool_rows);
  const double ref_ms = time_best_ms(3, [&] {
    for (std::size_t i = 0; i < pool_rows; ++i) {
      ref_out[i] = forest.predict_stats_reference(pool.row(i));
    }
  });

  bool bit_exact = true;
  for (std::size_t i = 0; i < pool_rows; ++i) {
    if (flat_out[i].mean != ref_out[i].mean ||
        flat_out[i].variance != ref_out[i].variance) {
      bit_exact = false;
      break;
    }
  }

  const double flat_rows_per_sec = 1000.0 * pool_rows / flat_ms;
  const double ref_rows_per_sec = 1000.0 * pool_rows / ref_ms;

  // ---- SIMD matrix: dispatch level x node layout over the same pool ----
  // Each cell is timed with the level pinned via set_level_override, checked
  // bit-for-bit against the reference walks, and reported relative to the
  // scalar 16-byte row so the kernel speedup is separated from the engine
  // speedup above.
  namespace simd = pwu::rf::simd;
  pwu::rf::QuantizedForest quant;
  const bool quant_built = quant.build(forest.flat());

  struct MatrixCell {
    const char* level;
    const char* layout;
    double ms = 0.0;
    bool bit_exact = true;
    bool available = false;
  };
  std::vector<MatrixCell> matrix;
  std::vector<PredictionStats> simd_out(pool_rows);
  const auto exact_vs_ref = [&](const std::vector<PredictionStats>& got) {
    for (std::size_t i = 0; i < pool_rows; ++i) {
      if (got[i].mean != ref_out[i].mean ||
          got[i].variance != ref_out[i].variance) {
        return false;
      }
    }
    return true;
  };
  for (const simd::Level level :
       {simd::Level::Scalar, simd::Level::Sse2, simd::Level::Avx2}) {
    MatrixCell flat_cell{simd::level_name(level), "flat16"};
    MatrixCell quant_cell{simd::level_name(level), "quant8"};
    if (level <= simd::detected_level()) {
      simd::set_level_override(level);
      flat_cell.available = true;
      flat_cell.ms = time_best_ms(5, [&] {
        forest.flat().predict_stats(pool, simd_out);
      });
      flat_cell.bit_exact = exact_vs_ref(simd_out);
      if (quant_built) {
        quant_cell.available = true;
        quant_cell.ms = time_best_ms(5, [&] {
          quant.predict_stats(pool, simd_out);
        });
        quant_cell.bit_exact = exact_vs_ref(simd_out);
      }
      simd::clear_level_override();
    }
    matrix.push_back(flat_cell);
    matrix.push_back(quant_cell);
  }
  const double scalar_flat_ms = matrix[0].ms;
  double best_kernel_speedup = 1.0;
  bool matrix_exact = true;
  for (const MatrixCell& cell : matrix) {
    if (!cell.available) continue;
    matrix_exact = matrix_exact && cell.bit_exact;
    best_kernel_speedup =
        std::max(best_kernel_speedup, scalar_flat_ms / cell.ms);
  }

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n"
       << "  \"fit\": {\n"
       << "    \"rows\": 2000, \"features\": 12, \"trees\": 50,\n"
       << "    \"ms\": " << fit_ms << ",\n"
       << "    \"seed_baseline_ms\": " << kSeedFitMs << ",\n"
       << "    \"speedup_vs_seed\": " << kSeedFitMs / fit_ms << "\n"
       << "  },\n"
       << "  \"predict_stats_batch\": {\n"
       << "    \"pool_rows\": " << pool_rows << ", \"trees\": 200,\n"
       << "    \"flat_ms\": " << flat_ms << ",\n"
       << "    \"flat_rows_per_sec\": " << flat_rows_per_sec << ",\n"
       << "    \"reference_ms\": " << ref_ms << ",\n"
       << "    \"reference_rows_per_sec\": " << ref_rows_per_sec << ",\n"
       << "    \"seed_baseline_ms\": " << kSeedPredictMs << ",\n"
       << "    \"speedup_vs_reference\": " << ref_ms / flat_ms << ",\n"
       << "    \"speedup_vs_seed\": " << kSeedPredictMs / flat_ms << "\n"
       << "  },\n"
       << "  \"simd_matrix\": {\n"
       << "    \"detected_level\": \""
       << simd::level_name(simd::detected_level()) << "\",\n"
       << "    \"pool_rows\": " << pool_rows << ", \"trees\": 200,\n"
       << "    \"cells\": [\n";
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const MatrixCell& cell = matrix[i];
    json << "      {\"level\": \"" << cell.level << "\", \"layout\": \""
         << cell.layout << "\", \"available\": "
         << (cell.available ? "true" : "false");
    if (cell.available) {
      json << ", \"ms\": " << cell.ms << ", \"rows_per_sec\": "
           << 1000.0 * pool_rows / cell.ms << ", \"speedup_vs_scalar\": "
           << scalar_flat_ms / cell.ms << ", \"bit_exact\": "
           << (cell.bit_exact ? "true" : "false");
    }
    json << "}" << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"best_kernel_speedup_vs_scalar\": " << best_kernel_speedup
       << ",\n"
       << "    \"target_speedup\": 2.0,\n"
       << "    \"target_met\": "
       << (best_kernel_speedup >= 2.0 ? "true" : "false") << ",\n"
       << "    \"bit_exact\": " << (matrix_exact ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"bit_exact\": " << (bit_exact ? "true" : "false") << "\n"
       << "}\n";
  json.close();

  std::cout << "fit(2000x12, 50 trees):          " << fit_ms << " ms (seed "
            << kSeedFitMs << " ms)\n"
            << "predict_stats(10k pool, 200t):\n"
            << "  flat      " << flat_ms << " ms  (" << flat_rows_per_sec
            << " rows/s)\n"
            << "  reference " << ref_ms << " ms  (" << ref_rows_per_sec
            << " rows/s)\n"
            << "  seed      " << kSeedPredictMs << " ms\n"
            << "  flat vs reference: " << ref_ms / flat_ms << "x, vs seed: "
            << kSeedPredictMs / flat_ms << "x\n"
            << "bit-exact flat == reference: " << (bit_exact ? "yes" : "NO")
            << "\nsimd matrix (detected " << simd::level_name(simd::detected_level())
            << "):\n";
  for (const MatrixCell& cell : matrix) {
    std::cout << "  " << cell.level << " x " << cell.layout << ": ";
    if (cell.available) {
      std::cout << cell.ms << " ms (" << scalar_flat_ms / cell.ms
                << "x scalar, bit-exact " << (cell.bit_exact ? "yes" : "NO")
                << ")\n";
    } else {
      std::cout << "unavailable on this host\n";
    }
  }
  std::cout << "  best kernel speedup vs scalar: " << best_kernel_speedup
            << "x (target 2x " << (best_kernel_speedup >= 2.0 ? "met" : "MISSED")
            << ")\nwrote " << out_path << "\n";
  return bit_exact && matrix_exact ? 0 : 1;
}
