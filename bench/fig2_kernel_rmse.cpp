// Fig. 2: top-alpha RMSE vs number of labeled samples for the 12 SPAPT
// kernels under all compared sampling methods (alpha = 0.01 as in
// Section IV-A). Prints one table + one chart per kernel.
//
// Expected shape (paper): PWU reaches a low error level first and holds an
// advantage over PBUS/MaxU/BestPerf/BRS for (nearly) all kernels.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner(
      "Fig. 2 — RMSE vs #samples, 12 SPAPT kernels, alpha=0.01", opts);

  const double alpha = 0.01;
  const auto spec = bench::spec_from_options(
      opts, core::standard_strategy_names(), alpha);

  for (const auto& name : bench::selected_kernels()) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    const auto result = core::run_experiment(*workload, spec);
    std::cout << "\n--- " << name << " (top-" << alpha * 100
              << "% RMSE, seconds) ---\n";
    core::print_series_table(std::cout, result);
    core::print_rmse_chart(std::cout, result, "RMSE vs #samples: " + name);
    core::write_series_csv(opts.out_dir, result, "fig2");

    // Paper-style summary line: where each strategy converges.
    std::cout << "final RMSE:";
    for (const auto& series : result.series) {
      std::cout << "  " << series.strategy << "="
                << util::TextTable::cell_sci(series.final_rmse());
    }
    std::cout << "\n";
  }
  return 0;
}
