// Service-level serving benchmark (emits BENCH_serve.json).
//
// Drives a fleet of ask/tell sessions to completion through three serving
// topologies and reports the numbers the scaling story rests on:
//
//   direct           handle_request on an in-process SessionManager — the
//                    no-transport, no-durability upper bound;
//   pipe_1worker     one forked pwu_serve behind a PipeTransport, auto-
//                    checkpointing every tell — a durable single-server
//                    deployment;
//   router_4workers  the pwu_router tier over four equally durable forked
//                    workers — consistent-hash placement plus per-shard
//                    pipelining, the same per-tell fsync cost per worker.
//
// Both multi-process topologies checkpoint every tell (the substrate
// failover rides on), so the pipe-vs-router delta isolates what the
// routing tier itself costs/buys rather than mixing in durability.
//
// Metrics per topology: overall requests/sec, asks/sec through the
// batched ask windows (where the router's per-shard pipelining shows up),
// per-tell round-trip latency percentiles (tell-to-fresh-model: the ack
// arrives only after the inline refit for refit-triggering tells), and
// the overload shed rate.
//
// A fourth section, `ask_fusion`, isolates SessionManager::ask_fused from
// transport effects: the same in-process fleet is driven to completion
// twice — once with one ask_with_deadline per session per window, once
// with the window coalesced into a single ask_fused call — and the two
// runs' candidate streams are compared bit-for-bit (fusion must be
// protocol-invisible) alongside the fused-vs-unfused asks/sec delta and
// the fused run's tell-to-fresh-model latency percentiles.
//
// A fifth section, `failover_mttr`, measures what warm-standby replication
// buys: two-worker router fleets where the session's owner is armed to die
// mid-tell, run once with cold re-home (checkpoint resume on the survivor)
// and once with --standby warm promotion. The metric is the wall time of
// the death-detecting request — detection, recovery, and the replayed tell
// until its answer arrives — i.e. time-to-first-answered-request after the
// kill, reported as p50/p99 per mode plus the cold/warm speedup.
//
// A sixth section, `framing_overhead`, prices the network-resilience layer
// of DESIGN.md §15: the same two-worker router fleet driven to completion
// twice, once over raw JSON lines and once with --frame semantics (pwu1
// length+CRC framing, idempotency stamping, epoch checks on every hop).
// Reported as framed-vs-unframed requests/sec and p99 tell latency; the
// layer is supposed to cost under ~3%.
//
// Usage: micro_serve [OUT.json] [PWU_SERVE_BIN]
// The serve binary defaults to ../tools/pwu_serve next to this binary.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "service/transport.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace {

namespace json = pwu::util::json;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSessions = 8;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

/// One serving topology: a single-request call and a batched window call
/// (the window is where transports get to pipeline).
struct Topology {
  std::string name;
  std::function<json::Value(const json::Value&)> call;
  std::function<std::vector<json::Value>(const std::vector<json::Value>&)>
      call_batch;
};

struct Metrics {
  std::size_t requests = 0;
  std::size_t sheds = 0;
  std::size_t asks = 0;
  double ask_window_s = 0.0;
  std::vector<double> tell_ms;
  double wall_s = 0.0;
  bool completed = true;
};

json::Value create_request(const std::string& name, unsigned seed) {
  return json::parse(
      R"({"op":"create","session":")" + name +
      R"(","workload":"gesummv","n_init":6,"n_batch":2,"n_max":18,)"
      R"("trees":8,"pool_size":150,"seed":)" + std::to_string(seed) + "}");
}

json::Value ask_request(const std::string& name) {
  json::Object obj;
  obj.emplace("op", json::Value("ask"));
  obj.emplace("session", json::Value(name));
  return json::Value(std::move(obj));
}

/// Calls with structured-overload retry, counting sheds.
json::Value call_patiently(const Topology& topo, const json::Value& request,
                           Metrics& metrics) {
  for (;;) {
    json::Value response = topo.call(request);
    metrics.requests += 1;
    if (!response.bool_or("overloaded", false) &&
        !response.bool_or("redirected", false)) {
      return response;
    }
    metrics.sheds += 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<long>(response.number_or("retry_after_ms", 25.0))));
  }
}

/// Drives kSessions sessions to completion: each round batches one ask
/// window across every live session, then tells the returned candidates
/// one by one (timed individually).
Metrics drive(const Topology& topo) {
  Metrics metrics;
  const auto wall_start = Clock::now();

  struct Live {
    std::string name;
    pwu::util::Rng rng{1};
    bool done = false;
  };
  const auto workload = pwu::workloads::make_workload("gesummv");
  std::vector<Live> sessions(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions[s].name = "bench-" + std::to_string(s);
    const json::Value created = call_patiently(
        topo, create_request(sessions[s].name, 100 + static_cast<unsigned>(s)),
        metrics);
    if (!created.bool_or("ok", false)) {
      std::cerr << "create failed: " << created.dump() << "\n";
      metrics.completed = false;
      return metrics;
    }
    sessions[s].rng =
        pwu::util::Rng(std::stoull(created.at("measure_seed").as_string()));
  }

  for (;;) {
    std::vector<std::size_t> live;
    std::vector<json::Value> window;
    for (std::size_t s = 0; s < kSessions; ++s) {
      if (sessions[s].done) continue;
      live.push_back(s);
      window.push_back(ask_request(sessions[s].name));
    }
    if (live.empty()) break;

    const auto ask_start = Clock::now();
    const std::vector<json::Value> batches = topo.call_batch(window);
    metrics.ask_window_s += ms_between(ask_start, Clock::now()) / 1000.0;
    metrics.requests += window.size();
    metrics.asks += window.size();

    for (std::size_t k = 0; k < live.size(); ++k) {
      Live& session = sessions[live[k]];
      const json::Value& batch = batches[k];
      if (!batch.bool_or("ok", false)) {
        std::cerr << "ask failed: " << batch.dump() << "\n";
        metrics.completed = false;
        return metrics;
      }
      const json::Array& candidates = batch.at("candidates").as_array();
      if (candidates.empty()) {
        session.done = true;
        continue;
      }
      for (const json::Value& candidate : candidates) {
        const auto config = pwu::service::configuration_from_json(
            candidate.at("levels"));
        const double t = workload->measure(config, session.rng, 1);
        json::Object tell;
        tell.emplace("op", json::Value("tell"));
        tell.emplace("session", json::Value(session.name));
        tell.emplace("levels", candidate.at("levels"));
        tell.emplace("time", json::Value(t));
        const json::Value request(std::move(tell));
        const auto tell_start = Clock::now();
        const json::Value told = call_patiently(topo, request, metrics);
        metrics.tell_ms.push_back(ms_between(tell_start, Clock::now()));
        if (!told.bool_or("ok", false)) {
          std::cerr << "tell failed: " << told.dump() << "\n";
          metrics.completed = false;
          return metrics;
        }
      }
    }
  }

  metrics.wall_s = ms_between(wall_start, Clock::now()) / 1000.0;
  return metrics;
}

// ---- ask fusion: fused vs unfused in-process fleets ------------------------

constexpr std::size_t kFusionSessions = 8;

/// One ask-fusion fleet run. The candidate streams are kept so the fused
/// and unfused runs can be compared bit-for-bit.
struct FusionRun {
  std::size_t asks = 0;     // session-asks served through ask windows
  double ask_s = 0.0;       // wall time inside the ask windows
  std::vector<double> tell_ms;
  std::uint64_t fused_groups = 0;
  std::uint64_t fused_scored_asks = 0;
  bool completed = true;
  /// streams[s] is session s's full candidate sequence, in ask order.
  std::vector<std::vector<pwu::service::Candidate>> streams;
};

pwu::service::SessionSpec fusion_spec(std::uint64_t seed) {
  pwu::service::SessionSpec spec;
  spec.workload = "gesummv";
  spec.learner.n_init = 6;
  spec.learner.n_batch = 2;
  spec.learner.n_max = 26;
  spec.learner.forest.num_trees = 100;
  spec.pool_size = 4000;
  spec.seed = seed;
  return spec;
}

/// Drives kFusionSessions identically-specced sessions (distinct seeds) to
/// completion. `fused` batches each ask window through one ask_fused call;
/// otherwise the window is one ask_with_deadline per session — the only
/// difference between the two runs, so the asks/sec delta is the fusion
/// win and any stream divergence is a fusion bug.
FusionRun drive_fusion_fleet(pwu::util::ThreadPool& workers, bool fused) {
  namespace svc = pwu::service;
  FusionRun run;
  run.streams.resize(kFusionSessions);
  svc::SessionManager manager(&workers);
  const auto workload = pwu::workloads::make_workload("gesummv");

  struct Live {
    std::string name;
    pwu::util::Rng rng{1};
    bool done = false;
  };
  std::vector<Live> sessions(kFusionSessions);
  for (std::size_t s = 0; s < kFusionSessions; ++s) {
    sessions[s].name = "fusion-" + std::to_string(s);
    const svc::SessionStatus created =
        manager.create(sessions[s].name, fusion_spec(500 + s));
    sessions[s].rng = pwu::util::Rng(created.measure_seed);
  }

  for (;;) {
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < kFusionSessions; ++s) {
      if (!sessions[s].done) live.push_back(s);
    }
    if (live.empty()) break;

    // One ask window over every live session.
    std::vector<std::vector<svc::Candidate>> window(live.size());
    const auto ask_start = Clock::now();
    if (fused) {
      std::vector<svc::FusedAskRequest> requests;
      requests.reserve(live.size());
      for (const std::size_t s : live) {
        requests.push_back({sessions[s].name, 0});
      }
      std::vector<svc::FusedAskResult> results =
          manager.ask_fused(requests, -1);
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (!results[k].error.empty()) {
          std::cerr << "fused ask failed: " << results[k].error << "\n";
          run.completed = false;
          return run;
        }
        window[k] = std::move(results[k].outcome.candidates);
      }
    } else {
      for (std::size_t k = 0; k < live.size(); ++k) {
        window[k] =
            manager.ask_with_deadline(sessions[live[k]].name, 0, -1)
                .candidates;
      }
    }
    run.ask_s += ms_between(ask_start, Clock::now()) / 1000.0;
    run.asks += live.size();

    for (std::size_t k = 0; k < live.size(); ++k) {
      Live& session = sessions[live[k]];
      if (window[k].empty()) {
        session.done = true;
        continue;
      }
      for (const svc::Candidate& candidate : window[k]) {
        run.streams[live[k]].push_back(candidate);
        const double t = workload->measure(candidate.config, session.rng, 1);
        const auto tell_start = Clock::now();
        manager.tell(session.name, candidate.config, t);
        run.tell_ms.push_back(ms_between(tell_start, Clock::now()));
      }
    }
  }

  const svc::HealthReport health = manager.health();
  run.fused_groups = health.fused_groups;
  run.fused_scored_asks = health.fused_scored_asks;
  return run;
}

bool same_streams(const FusionRun& a, const FusionRun& b) {
  if (a.streams.size() != b.streams.size()) return false;
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    if (a.streams[s].size() != b.streams[s].size()) return false;
    for (std::size_t i = 0; i < a.streams[s].size(); ++i) {
      const pwu::service::Candidate& x = a.streams[s][i];
      const pwu::service::Candidate& y = b.streams[s][i];
      if (!(x.config == y.config) || x.has_prediction != y.has_prediction ||
          x.predicted_mean != y.predicted_mean ||
          x.predicted_stddev != y.predicted_stddev ||
          x.iteration != y.iteration) {
        return false;
      }
    }
  }
  return true;
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("pwu_bench_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---- failover MTTR: cold re-home vs warm promotion -------------------------

constexpr int kMttrIterations = 5;
constexpr std::size_t kMttrWarmupTells = 40;
// Asks consumed by the warm-up: one init window (n_init 8) plus n_batch-2
// windows for the remaining tells. The owner dies on the ask after that.
constexpr std::size_t kMttrWarmupAsks = 1 + (kMttrWarmupTells - 8) / 2;

struct MttrRun {
  std::vector<double> ms;  // one death-to-first-answer sample per fleet
  bool completed = true;
};

/// One fleet, one kill, one sample: a heavy session (60 trees, pool 2000)
/// is warmed up with kMttrWarmupTells labeled points, then its owner dies
/// receiving the next ask — before applying anything, so the replayed
/// request itself is cheap and the sample isolates recovery. The sample
/// is that ask's wall time: the router detects the death, recovers the
/// session (cold resume of the checkpoint image vs promotion of the live
/// shadow), replays the ask, and answers.
MttrRun measure_failover_mttr(const std::string& serve_bin, bool standby) {
  MttrRun run;
  pwu::router::HashRing ring;
  ring.add("shard-0");
  ring.add("shard-1");

  for (int iter = 0; iter < kMttrIterations; ++iter) {
    const std::string tag = std::string(standby ? "warm" : "cold") + "_" +
                            std::to_string(iter);
    std::vector<pwu::router::ShardSpec> specs(2);
    for (int i = 0; i < 2; ++i) {
      const std::string dir = fresh_dir("mttr_" + tag + "_" +
                                        std::to_string(i));
      std::string command = "'" + serve_bin + "' --checkpoint-dir '" + dir +
                            "' --checkpoint-every 1";
      // The owner (always shard-0 by session-name choice below) dies on
      // the first ask request after the warm-up.
      if (i == 0) {
        command += " --kill-at protocol.ask:" +
                   std::to_string(kMttrWarmupAsks);
      }
      specs[i].name = "shard-" + std::to_string(i);
      specs[i].checkpoint_dir = dir;
      specs[i].transport =
          std::make_unique<pwu::service::PipeTransport>(command, 120.0);
    }
    pwu::router::RouterOptions options;
    options.standby = standby;
    // Synchronous replication: every acked op flushes immediately, so the
    // promotion path never drains a lagged outbox inside the timed window
    // — the MTTR sample is detection + promote + replay, nothing else.
    options.replication_lag_max = 0;
    pwu::router::Router router(std::move(specs), options);

    std::string name;
    for (int j = 0;; ++j) {
      name = "mttr-" + std::to_string(iter) + "-" + std::to_string(j);
      if (ring.owner(name) == "shard-0") break;
    }
    const json::Value created = router.handle(json::parse(
        R"({"op":"create","session":")" + name +
        R"(","workload":"gesummv","n_init":8,"n_batch":2,"n_max":60,)"
        R"("trees":60,"pool_size":2000,"seed":)" +
        std::to_string(700 + iter) + "}"));
    if (!created.bool_or("ok", false)) {
      std::cerr << "mttr create failed: " << created.dump() << "\n";
      run.completed = false;
      return run;
    }
    const auto workload = pwu::workloads::make_workload("gesummv");
    pwu::util::Rng rng(std::stoull(created.at("measure_seed").as_string()));

    bool sampled = false;
    while (!sampled) {
      const auto ask_start = Clock::now();
      const json::Value batch = router.handle(ask_request(name));
      const double elapsed = ms_between(ask_start, Clock::now());
      if (!batch.bool_or("ok", false)) {
        std::cerr << "mttr ask failed: " << batch.dump() << "\n";
        run.completed = false;
        return run;
      }
      if (router.stats().failovers == 1) {
        // This ask is the one that found the corpse and rode the
        // recovery: detection + resume-or-promotion + replay.
        run.ms.push_back(elapsed);
        sampled = true;
        break;
      }
      const json::Array& candidates = batch.at("candidates").as_array();
      if (candidates.empty()) break;
      for (const json::Value& candidate : candidates) {
        const auto config =
            pwu::service::configuration_from_json(candidate.at("levels"));
        const double t = workload->measure(config, rng, 1);
        json::Object tell;
        tell.emplace("op", json::Value("tell"));
        tell.emplace("session", json::Value(name));
        tell.emplace("levels", candidate.at("levels"));
        tell.emplace("time", json::Value(t));
        const json::Value told = router.handle(json::Value(std::move(tell)));
        if (!told.bool_or("ok", false)) {
          std::cerr << "mttr tell failed: " << told.dump() << "\n";
          run.completed = false;
          return run;
        }
      }
    }
    if (!sampled) {
      std::cerr << "mttr: kill never fired (mode "
                << (standby ? "warm" : "cold") << ", iter " << iter << ")\n";
      run.completed = false;
    }
    if (standby && router.stats().promotions != 1) {
      std::cerr << "mttr: warm mode fell back to cold re-home\n";
      run.completed = false;
    }
    router.handle(json::parse(R"({"op":"shutdown"})"));
    if (!run.completed) return run;
  }
  return run;
}

void emit(std::ostream& out, const std::string& name, const Metrics& m,
          bool last) {
  const double tput = m.wall_s > 0.0
                          ? static_cast<double>(m.requests) / m.wall_s
                          : 0.0;
  const double asks_per_sec =
      m.ask_window_s > 0.0 ? static_cast<double>(m.asks) / m.ask_window_s
                           : 0.0;
  const double shed_rate =
      m.requests > 0
          ? static_cast<double>(m.sheds) / static_cast<double>(m.requests)
          : 0.0;
  out << "  \"" << name << "\": {\n"
      << "    \"sessions\": " << kSessions << ",\n"
      << "    \"completed\": " << (m.completed ? "true" : "false") << ",\n"
      << "    \"requests\": " << m.requests << ",\n"
      << "    \"wall_s\": " << m.wall_s << ",\n"
      << "    \"requests_per_sec\": " << tput << ",\n"
      << "    \"asks_per_sec\": " << asks_per_sec << ",\n"
      << "    \"tell_ms\": {\"p50\": " << percentile(m.tell_ms, 0.50)
      << ", \"p90\": " << percentile(m.tell_ms, 0.90)
      << ", \"p99\": " << percentile(m.tell_ms, 0.99) << "},\n"
      << "    \"shed_rate\": " << shed_rate << "\n"
      << "  }" << (last ? "\n" : ",\n");
  std::cout << name << ": " << m.requests << " req in " << m.wall_s
            << " s (" << tput << " req/s, " << asks_per_sec
            << " asks/s batched, tell p50 " << percentile(m.tell_ms, 0.50)
            << " ms / p99 " << percentile(m.tell_ms, 0.99)
            << " ms, shed " << 100.0 * shed_rate << "%)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  std::string serve_bin;
  if (argc > 2) {
    serve_bin = argv[2];
  } else {
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec) {
      serve_bin =
          (self.parent_path().parent_path() / "tools" / "pwu_serve").string();
    }
  }
  const bool have_serve = !serve_bin.empty() && fs::exists(serve_bin);
  if (!have_serve) {
    std::cerr << "micro_serve: pwu_serve not found (" << serve_bin
              << "); running the in-process topology only\n";
  }

  // ---- direct: in-process SessionManager ----
  pwu::service::SessionManager direct_manager;
  const Topology direct{
      "direct",
      [&](const json::Value& request) {
        return pwu::service::handle_request(direct_manager, request);
      },
      [&](const std::vector<json::Value>& window) {
        std::vector<json::Value> responses;
        responses.reserve(window.size());
        for (const json::Value& request : window) {
          responses.push_back(
              pwu::service::handle_request(direct_manager, request));
        }
        return responses;
      }};
  const Metrics direct_metrics = drive(direct);

  // ---- pipe_1worker: one forked pwu_serve ----
  Metrics pipe_metrics;
  if (have_serve) {
    pwu::service::PipeTransport pipe("'" + serve_bin + "' --checkpoint-dir '" +
                                         fresh_dir("pipe") +
                                         "' --checkpoint-every 1",
                                     120.0);
    const Topology topo{
        "pipe_1worker",
        [&](const json::Value& request) {
          return json::parse(pipe.request(request.dump()));
        },
        [&](const std::vector<json::Value>& window) {
          // The transport-level pipelining the router generalizes: write
          // the whole window, then drain.
          for (const json::Value& request : window) pipe.send(request.dump());
          std::vector<json::Value> responses;
          responses.reserve(window.size());
          for (std::size_t i = 0; i < window.size(); ++i) {
            responses.push_back(json::parse(pipe.recv()));
          }
          return responses;
        }};
    pipe_metrics = drive(topo);
    pipe.request(R"({"op":"shutdown"})");
  }

  // ---- router_4workers: the sharded tier ----
  Metrics router_metrics;
  if (have_serve) {
    std::vector<pwu::router::ShardSpec> specs(4);
    for (int i = 0; i < 4; ++i) {
      const std::string dir = fresh_dir("router_" + std::to_string(i));
      specs[i].name = "shard-" + std::to_string(i);
      specs[i].transport = std::make_unique<pwu::service::PipeTransport>(
          "'" + serve_bin + "' --checkpoint-dir '" + dir +
              "' --checkpoint-every 1",
          120.0);
      specs[i].checkpoint_dir = dir;
    }
    pwu::router::Router router(std::move(specs));
    const Topology topo{
        "router_4workers",
        [&](const json::Value& request) { return router.handle(request); },
        [&](const std::vector<json::Value>& window) {
          return router.handle_batch(window);
        }};
    router_metrics = drive(topo);
    router.handle(json::parse(R"({"op":"shutdown"})"));
  }

  // ---- ask_fusion: fused vs unfused in-process fleets ----
  // Fleets are deterministic (fixed seeds), so repeats redo identical work:
  // keep the first run of each mode for the stream comparison and take the
  // best-of-3 window time per mode (alternating modes so machine noise
  // lands on both), exactly like micro_rf's time_best_ms.
  pwu::util::ThreadPool fusion_workers(4);
  FusionRun unfused = drive_fusion_fleet(fusion_workers, false);
  FusionRun fused = drive_fusion_fleet(fusion_workers, true);
  for (int rep = 1; rep < 3; ++rep) {
    unfused.ask_s =
        std::min(unfused.ask_s, drive_fusion_fleet(fusion_workers, false).ask_s);
    fused.ask_s =
        std::min(fused.ask_s, drive_fusion_fleet(fusion_workers, true).ask_s);
  }
  const bool streams_identical = same_streams(unfused, fused);
  const double unfused_aps =
      unfused.ask_s > 0.0 ? static_cast<double>(unfused.asks) / unfused.ask_s
                          : 0.0;
  const double fused_aps =
      fused.ask_s > 0.0 ? static_cast<double>(fused.asks) / fused.ask_s : 0.0;
  const double fusion_speedup = fused_aps > 0.0 && unfused_aps > 0.0
                                    ? fused_aps / unfused_aps
                                    : 0.0;
  std::cout << "ask_fusion: unfused " << unfused_aps << " asks/s, fused "
            << fused_aps << " asks/s (" << fusion_speedup
            << "x, streams bit-identical: "
            << (streams_identical ? "yes" : "NO") << ", fused tell p50 "
            << percentile(fused.tell_ms, 0.50) << " ms / p99 "
            << percentile(fused.tell_ms, 0.99) << " ms)\n";

  // ---- framing_overhead: framed vs unframed two-worker fleets ----
  Metrics unframed_metrics;
  Metrics framed_metrics;
  if (have_serve) {
    // No checkpointing here, unlike the topology sections: a per-tell
    // fsync costs ~100x what a CRC does, and its scheduling noise buries
    // the number this section exists to report. Both fleets are equally
    // volatile, so the delta still prices exactly the framing layer.
    const auto run_fleet = [&](bool frame) {
      std::vector<pwu::router::ShardSpec> specs(2);
      for (int i = 0; i < 2; ++i) {
        specs[i].name = "shard-" + std::to_string(i);
        specs[i].transport = std::make_unique<pwu::service::PipeTransport>(
            "'" + serve_bin + "'", 120.0);
      }
      pwu::router::RouterOptions options;
      options.frame = frame;
      pwu::router::Router router(std::move(specs), options);
      const Topology topo{
          frame ? "router_framed" : "router_unframed",
          [&](const json::Value& request) { return router.handle(request); },
          [&](const std::vector<json::Value>& window) {
            return router.handle_batch(window);
          }};
      Metrics m = drive(topo);
      router.handle(json::parse(R"({"op":"shutdown"})"));
      return m;
    };
    // Fleets are deterministic, so repeats redo identical work; take the
    // best-of-6 per mode. The framing delta is ~1 us/request, well inside
    // single-run scheduling noise, so fairness of the repetition schedule
    // matters more than its length: the pair order flips every rep
    // (u,f / f,u / ...) — under sustained load the CPU clocks down as the
    // section runs, and a fixed order would bill that decay to whichever
    // mode always ran second.
    unframed_metrics = run_fleet(false);
    framed_metrics = run_fleet(true);
    for (int rep = 1; rep < 6; ++rep) {
      const bool framed_first = (rep % 2) != 0;
      const Metrics a = run_fleet(framed_first);
      const Metrics b = run_fleet(!framed_first);
      const Metrics& f = framed_first ? a : b;
      const Metrics& u = framed_first ? b : a;
      if (u.wall_s < unframed_metrics.wall_s) unframed_metrics = u;
      if (f.wall_s < framed_metrics.wall_s) framed_metrics = f;
    }
  }
  const double unframed_rps =
      unframed_metrics.wall_s > 0.0
          ? static_cast<double>(unframed_metrics.requests) /
                unframed_metrics.wall_s
          : 0.0;
  const double framed_rps =
      framed_metrics.wall_s > 0.0
          ? static_cast<double>(framed_metrics.requests) /
                framed_metrics.wall_s
          : 0.0;
  const double framing_overhead_pct =
      unframed_rps > 0.0 ? 100.0 * (1.0 - framed_rps / unframed_rps) : 0.0;
  if (have_serve) {
    std::cout << "framing_overhead: unframed " << unframed_rps
              << " req/s, framed " << framed_rps << " req/s ("
              << framing_overhead_pct << "% overhead, tell p99 "
              << percentile(unframed_metrics.tell_ms, 0.99) << " -> "
              << percentile(framed_metrics.tell_ms, 0.99) << " ms)\n";
  }

  // ---- failover MTTR: cold re-home vs warm promotion ----
  MttrRun cold_mttr;
  MttrRun warm_mttr;
  double warm_speedup_p50 = 0.0;
  if (have_serve) {
    cold_mttr = measure_failover_mttr(serve_bin, false);
    warm_mttr = measure_failover_mttr(serve_bin, true);
    const double cold_p50 = percentile(cold_mttr.ms, 0.50);
    const double warm_p50 = percentile(warm_mttr.ms, 0.50);
    warm_speedup_p50 = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;
    std::cout << "failover_mttr: cold re-home p50 " << cold_p50 << " ms / p99 "
              << percentile(cold_mttr.ms, 0.99) << " ms, warm promotion p50 "
              << warm_p50 << " ms / p99 " << percentile(warm_mttr.ms, 0.99)
              << " ms (" << warm_speedup_p50 << "x faster at p50)\n";
  }

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n";
  emit(out, "direct", direct_metrics, false);
  if (have_serve) {
    emit(out, "pipe_1worker", pipe_metrics, false);
    emit(out, "router_4workers", router_metrics, false);
  }
  out << "  \"ask_fusion\": {\n"
      << "    \"sessions\": " << kFusionSessions
      << ", \"pool_size\": " << fusion_spec(0).pool_size
      << ", \"trees\": " << fusion_spec(0).learner.forest.num_trees
      << ", \"workers\": 4,\n"
      << "    \"completed\": "
      << (unfused.completed && fused.completed ? "true" : "false") << ",\n"
      << "    \"unfused\": {\"asks\": " << unfused.asks << ", \"ask_s\": "
      << unfused.ask_s << ", \"asks_per_sec\": " << unfused_aps << "},\n"
      << "    \"fused\": {\"asks\": " << fused.asks << ", \"ask_s\": "
      << fused.ask_s << ", \"asks_per_sec\": " << fused_aps
      << ", \"fused_groups\": " << fused.fused_groups
      << ", \"fused_scored_asks\": " << fused.fused_scored_asks << "},\n"
      << "    \"fused_speedup_vs_unfused\": " << fusion_speedup << ",\n"
      << "    \"fused_exceeds_unfused\": "
      << (fused_aps > unfused_aps ? "true" : "false") << ",\n"
      << "    \"streams_bit_identical\": "
      << (streams_identical ? "true" : "false") << ",\n"
      << "    \"tell_to_fresh_model_ms\": {\"p50\": "
      << percentile(fused.tell_ms, 0.50)
      << ", \"p90\": " << percentile(fused.tell_ms, 0.90)
      << ", \"p99\": " << percentile(fused.tell_ms, 0.99) << "}\n"
      << "  }" << (have_serve ? ",\n" : "\n");
  if (have_serve) {
    out << "  \"failover_mttr\": {\n"
        << "    \"iterations\": " << kMttrIterations
        << ", \"warmup_tells\": " << kMttrWarmupTells
        << ", \"trees\": 40, \"pool_size\": 800,\n"
        << "    \"completed\": "
        << (cold_mttr.completed && warm_mttr.completed ? "true" : "false")
        << ",\n"
        << "    \"cold_rehome_ms\": {\"p50\": "
        << percentile(cold_mttr.ms, 0.50)
        << ", \"p99\": " << percentile(cold_mttr.ms, 0.99) << "},\n"
        << "    \"warm_promotion_ms\": {\"p50\": "
        << percentile(warm_mttr.ms, 0.50)
        << ", \"p99\": " << percentile(warm_mttr.ms, 0.99) << "},\n"
        << "    \"warm_speedup_p50\": " << warm_speedup_p50 << ",\n"
        << "    \"warm_faster_than_cold\": "
        << (warm_speedup_p50 > 1.0 ? "true" : "false") << "\n"
        << "  },\n";
    out << "  \"framing_overhead\": {\n"
        << "    \"sessions\": " << kSessions << ", \"workers\": 2,\n"
        << "    \"completed\": "
        << (unframed_metrics.completed && framed_metrics.completed ? "true"
                                                                   : "false")
        << ",\n"
        << "    \"unframed\": {\"requests\": " << unframed_metrics.requests
        << ", \"requests_per_sec\": " << unframed_rps
        << ", \"tell_p99_ms\": " << percentile(unframed_metrics.tell_ms, 0.99)
        << "},\n"
        << "    \"framed\": {\"requests\": " << framed_metrics.requests
        << ", \"requests_per_sec\": " << framed_rps
        << ", \"tell_p99_ms\": " << percentile(framed_metrics.tell_ms, 0.99)
        << "},\n"
        << "    \"req_per_sec_overhead_pct\": " << framing_overhead_pct
        << ",\n"
        << "    \"overhead_below_3pct\": "
        << (framing_overhead_pct < 3.0 ? "true" : "false") << "\n"
        << "  }\n";
  }
  out << "}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  const bool ok = direct_metrics.completed &&
                  (!have_serve ||
                   (pipe_metrics.completed && router_metrics.completed &&
                    unframed_metrics.completed && framed_metrics.completed &&
                    cold_mttr.completed && warm_mttr.completed &&
                    warm_speedup_p50 > 1.0)) &&
                  unfused.completed && fused.completed && streams_identical;
  return ok ? 0 : 1;
}
