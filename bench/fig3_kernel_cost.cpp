// Fig. 3: cumulative labeling cost (CC, Eq. 3) vs number of samples for the
// 12 SPAPT kernels under all compared sampling methods.
//
// Expected shape (paper): BestPerf and BRS label cheapest (they stay in the
// fast region), PWU costs less than PBUS while reaching lower error, MaxU
// and uniform random pay for labeling slow configurations.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 3 — CC vs #samples, 12 SPAPT kernels", opts);

  const double alpha = 0.01;
  const auto spec = bench::spec_from_options(
      opts, core::standard_strategy_names(), alpha);

  for (const auto& name : bench::selected_kernels()) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    const auto result = core::run_experiment(*workload, spec);
    std::cout << "\n--- " << name << " (cumulative cost, seconds) ---\n";
    core::print_cost_chart(std::cout, result, "CC vs #samples: " + name);
    core::write_series_csv(opts.out_dir, result, "fig3");

    std::cout << "final CC:";
    for (const auto& series : result.series) {
      std::cout << "  " << series.strategy << "="
                << util::TextTable::cell(series.points.back().cc_mean, 2)
                << "s";
    }
    std::cout << "\n";
  }
  return 0;
}
