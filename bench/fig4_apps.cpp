// Fig. 4: RMSE (a) and CC (b) vs number of samples for the two parallel
// applications kripke and hypre (alpha = 0.01).
//
// Expected shape (paper): PWU attains the lowest error; its CC is higher
// than the cheap baselines (the uncertain configurations of an application
// space are the expensive ones), which is exactly why Fig. 5 re-keys the
// comparison by cost.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 4 — RMSE and CC vs #samples: kripke, hypre",
                      opts);

  const double alpha = 0.01;
  auto spec = bench::spec_from_options(opts, core::standard_strategy_names(),
                                       alpha);

  for (const auto& name : workloads::application_names()) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    // Application spaces are enumerable: the learner may stop early when
    // the pool drains; cap n_max to stay within the pool.
    auto app_spec = spec;
    const auto total = static_cast<std::size_t>(workload->space().size());
    const std::size_t pool_share = total * 7 / 10;
    app_spec.learner.n_max = std::min(app_spec.learner.n_max, pool_share);

    const auto result = core::run_experiment(*workload, app_spec);
    std::cout << "\n--- " << name << " ---\n";
    core::print_series_table(std::cout, result);
    core::print_rmse_chart(std::cout, result,
                           "Fig 4(a) RMSE vs #samples: " + name);
    core::print_cost_chart(std::cout, result,
                           "Fig 4(b) CC vs #samples: " + name);
    core::write_series_csv(opts.out_dir, result, "fig4");
  }
  return 0;
}
