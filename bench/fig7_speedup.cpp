// Fig. 7: the headline result — the cumulative-cost speedup of PWU over
// PBUS at matched top-alpha error, for every program in the benchmark set.
//
// Expected shape (paper): speedup > 1 nearly everywhere, up to ~21x on the
// best case and ~3x on geometric average. Absolute values differ on our
// simulated substrate; the "PWU cheaper at equal error" shape is the claim
// under reproduction.

#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 7 — CC speedup of PWU over PBUS at matched error",
                      opts);

  const double alpha = 0.01;
  // "Low error level" = margin x the worse of the two strategies' best
  // RMSE. Tighter margins sit nearer the common convergence floor, where
  // PWU's sample-efficiency advantage dominates; PWU_MARGIN_PCT overrides
  // (e.g. 2 -> 1.02x).
  double margin = 1.03;
  if (auto v = util::env_int("PWU_MARGIN_PCT"); v && *v >= 0) {
    margin = 1.0 + static_cast<double>(*v) / 100.0;
  }
  std::cout << "matched-error margin: " << margin << "x\n";
  const auto spec = bench::spec_from_options(opts, {"pwu", "pbus"}, alpha);

  util::TextTable table;
  table.set_header({"program", "pwu CC@err", "pbus CC@err", "speedup"});
  double log_sum = 0.0;
  double max_speedup = 0.0;
  std::size_t counted = 0;

  std::vector<std::string> programs = bench::selected_kernels();
  for (const auto& app : workloads::application_names()) {
    programs.push_back(app);
  }

  for (const auto& name : programs) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    auto prog_spec = spec;
    if (workload->space().size() < 1e6L) {
      const auto total = static_cast<std::size_t>(workload->space().size());
      prog_spec.learner.n_max =
          std::min(prog_spec.learner.n_max, total * 7 / 10);
    }
    const auto result = core::run_experiment(*workload, prog_spec);
    core::write_series_csv(opts.out_dir, result, "fig7");

    const auto& ours = result.find("pwu");
    const auto& baseline = result.find("pbus");
    const double target =
        margin * std::max(ours.best_rmse(), baseline.best_rmse());
    const double cc_ours = ours.cost_to_reach_rmse(target);
    const double cc_base = baseline.cost_to_reach_rmse(target);
    const double speedup = core::cost_speedup(result, "pwu", "pbus", margin);
    table.add_row({name,
                   std::isfinite(cc_ours)
                       ? util::TextTable::cell(cc_ours, 2)
                       : "n/a",
                   std::isfinite(cc_base)
                       ? util::TextTable::cell(cc_base, 2)
                       : "n/a",
                   std::isfinite(speedup)
                       ? util::TextTable::cell(speedup, 2) + "x"
                       : "n/a"});
    if (std::isfinite(speedup) && speedup > 0.0) {
      log_sum += std::log(speedup);
      max_speedup = std::max(max_speedup, speedup);
      ++counted;
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  if (counted > 0) {
    std::cout << "\ngeometric-mean speedup: "
              << util::TextTable::cell(
                     std::exp(log_sum / static_cast<double>(counted)), 2)
              << "x over " << counted << " programs (max "
              << util::TextTable::cell(max_speedup, 2) << "x)\n"
              << "(paper: 3x average, 21x max on real hardware)\n";
  }
  return 0;
}
