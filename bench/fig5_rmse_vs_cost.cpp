// Fig. 5: top-alpha RMSE as a function of *cumulative time cost* — the
// fair comparison when strategies label samples of very different expense.
// The paper plots the two applications; we also include the atax case-study
// kernel.
//
// Expected shape: PWU dominates or matches every baseline once the x-axis
// is cost rather than sample count.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Fig. 5 — RMSE vs cumulative cost", opts);

  const double alpha = 0.01;
  const auto spec = bench::spec_from_options(
      opts, core::standard_strategy_names(), alpha);

  const std::vector<std::string> programs = {"kripke", "hypre", "atax"};
  for (const auto& name : programs) {
    bench::ScopedTimer timer(name);
    const auto workload = workloads::make_workload(name);
    auto prog_spec = spec;
    if (workload->space().size() < 1e6L) {
      const auto total = static_cast<std::size_t>(workload->space().size());
      prog_spec.learner.n_max =
          std::min(prog_spec.learner.n_max, total * 7 / 10);
    }
    const auto result = core::run_experiment(*workload, prog_spec);
    std::cout << "\n--- " << name << " ---\n";
    core::print_rmse_vs_cost_chart(std::cout, result,
                                   "RMSE vs cumulative cost: " + name);
    core::write_series_csv(opts.out_dir, result, "fig5");
  }
  return 0;
}
