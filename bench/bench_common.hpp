// Shared plumbing for the figure-reproduction binaries: environment-scaled
// experiment specs, kernel-subset selection, and timing decoration.

#pragma once

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace pwu::bench {

/// Builds an ExperimentSpec from the PWU_* environment knobs.
inline core::ExperimentSpec spec_from_options(
    const util::BenchOptions& opts, std::vector<std::string> strategies,
    double alpha) {
  core::ExperimentSpec spec;
  spec.strategies = std::move(strategies);
  spec.alpha = alpha;
  spec.repeats = opts.repeats;
  spec.pool_size = opts.pool_size;
  spec.test_size = opts.test_size;
  spec.learner.n_init = opts.n_init;
  spec.learner.n_max = opts.n_max;
  spec.learner.forest.num_trees = opts.num_trees;
  spec.learner.eval_every = opts.eval_every;
  spec.seed = opts.seed;
  return spec;
}

/// Workload subset: PWU_KERNELS="atax,mm" restricts kernel sweeps; default
/// is the full paper set.
inline std::vector<std::string> selected_kernels() {
  const auto env = util::env_string("PWU_KERNELS");
  if (!env) return workloads::kernel_names();
  std::vector<std::string> picked;
  std::stringstream ss(*env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) picked.push_back(item);
  }
  return picked.empty() ? workloads::kernel_names() : picked;
}

/// Header block every figure binary prints.
inline void print_banner(const std::string& figure,
                         const util::BenchOptions& opts) {
  std::cout << "==========================================================\n"
            << figure << "\n"
            << "scale: " << opts.describe() << "\n"
            << "(set PWU_FULL=1 for the paper-scale protocol; "
               "PWU_KERNELS=a,b to subset)\n"
            << "==========================================================\n";
}

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label) : label_(std::move(label)) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    std::cout << "[" << label_ << " took "
              << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                         .count() /
                     1000.0
              << " s]\n";
  }

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace pwu::bench
