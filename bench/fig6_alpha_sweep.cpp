// Fig. 6: robustness to the alpha knob — RMSE vs #samples for PWU and PBUS
// on the atax kernel at alpha in {0.01, 0.05, 0.10} (Section IV-B).
//
// Expected shape: PWU performs best at every alpha; the ordering does not
// flip as the high-performance definition loosens.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner(
      "Fig. 6 — RMSE vs #samples at alpha in {0.01, 0.05, 0.10} (atax)",
      opts);

  const auto workload = workloads::make_workload("atax");
  for (double alpha : {0.01, 0.05, 0.10}) {
    bench::ScopedTimer timer("alpha=" + util::TextTable::cell(alpha, 2));
    const auto spec = bench::spec_from_options(
        opts, {"pwu", "pbus"}, alpha);
    const auto result = core::run_experiment(*workload, spec);
    std::cout << "\n--- alpha = " << alpha << " ---\n";
    core::print_series_table(std::cout, result);
    core::print_rmse_chart(
        std::cout, result,
        "atax, alpha=" + util::TextTable::cell(alpha, 2));
    core::write_series_csv(opts.out_dir, result,
                           "fig6_alpha" + util::TextTable::cell(alpha, 2));
    const double speedup = core::cost_speedup(result, "pwu", "pbus");
    std::cout << "cost speedup pwu vs pbus at matched error: "
              << util::TextTable::cell(speedup, 2) << "x\n";
  }
  return 0;
}
