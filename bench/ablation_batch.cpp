// Ablation (beyond the paper): batch size. The paper fixes n_batch = 1 —
// the most sample-efficient but most refit-heavy choice. This sweep
// quantifies what larger batches (fewer refits, cheaper wall clock) give up
// in top-alpha error on the atax kernel.

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Ablation — batch size (PWU on atax)", opts);

  const auto workload = workloads::make_workload("atax");
  util::TextTable table;
  table.set_header({"n_batch", "final RMSE", "final CC (s)", "#refits"});

  for (std::size_t batch : {1u, 2u, 5u, 10u, 25u}) {
    bench::ScopedTimer timer("batch=" + std::to_string(batch));
    auto spec = bench::spec_from_options(opts, {"pwu"}, 0.01);
    spec.learner.n_batch = batch;
    const auto result = core::run_experiment(*workload, spec);
    const auto& series = result.find("pwu");
    const std::size_t refits =
        (opts.n_max - opts.n_init + batch - 1) / batch;
    table.add_row({std::to_string(batch),
                   util::TextTable::cell_sci(series.final_rmse()),
                   util::TextTable::cell(series.points.back().cc_mean, 2),
                   std::to_string(refits)});
    core::write_series_csv(opts.out_dir, result,
                           "ablation_batch" + std::to_string(batch));
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected: error degrades gracefully as the batch grows; "
               "n_batch=1 (the paper's choice) is the quality ceiling.\n";
  return 0;
}
