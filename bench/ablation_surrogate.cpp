// Ablation (paper Section II-B made quantitative): random forest vs
// Gaussian process as the surrogate inside the identical Algorithm-1 loop.
//
// Measured shape (see EXPERIMENTS.md): the GP is a strong baseline at
// small training sizes — its smoothness prior fits the mostly-ordinal
// application spaces well — while the forest wins on the interaction-heavy
// kernels (mm) and, decisively, on high-cardinality categorical structure
// with few samples per level (tests/test_surrogate.cpp's 20-level case,
// the regime of hypre's 24 solver ids at paper-scale budgets). The forest
// also refits in O(n log n) against the GP's O(n^3), which dominates at
// the paper's n_max = 500.

#include <chrono>

#include "bench_common.hpp"

int main() {
  using namespace pwu;
  const auto opts = util::BenchOptions::from_env();
  bench::print_banner("Ablation — surrogate model: random forest vs GP",
                      opts);

  util::TextTable table;
  table.set_header({"workload", "surrogate", "final top-alpha RMSE",
                    "full RMSE", "wall time (s)"});

  const double alpha = 0.05;
  for (const std::string name : {"atax", "mm", "hypre", "kripke"}) {
    const auto workload = workloads::make_workload(name);
    for (const std::string kind : {"rf", "gp"}) {
      auto spec = bench::spec_from_options(opts, {"pwu"}, alpha);
      spec.learner.surrogate = kind;
      if (workload->space().size() < 1e6L) {
        const auto total =
            static_cast<std::size_t>(workload->space().size());
        spec.learner.n_max = std::min(spec.learner.n_max, total * 7 / 10);
      }
      const auto start = std::chrono::steady_clock::now();
      const auto result = core::run_experiment(*workload, spec);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const auto& series = result.find("pwu");
      table.add_row({name, kind,
                     util::TextTable::cell_sci(series.final_rmse()),
                     util::TextTable::cell_sci(
                         series.points.back().full_rmse_mean),
                     util::TextTable::cell(seconds, 1)});
      core::write_series_csv(opts.out_dir, result,
                             "ablation_surrogate_" + kind);
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nsee the header comment for the expected shape: GP strong "
               "at small n on smooth/ordinal spaces, forest ahead on "
               "interaction-heavy kernels and high-cardinality categoricals, "
               "and O(n log n) vs O(n^3) refits at paper scale.\n";
  return 0;
}
