// pwu_serve — JSON-lines tuning service over stdin/stdout.
//
// One request object per line in, one response per line out (see
// src/service/protocol.hpp for the vocabulary). Pipe-friendly:
//
//   printf '%s\n' \
//     '{"op":"create","session":"s","workload":"atax","n_max":30,"pool_size":200,"seed":7}' \
//     '{"op":"ask","session":"s"}' \
//     '{"op":"shutdown"}' | pwu_serve
//
//   pwu_serve --threads 8     # worker pool for parallel session refits
//   pwu_serve --checkpoint-dir /var/lib/pwu --checkpoint-every 5
//     # crash safety: atomically checkpoint each session to
//     # <dir>/<session>.ckpt every 5 tells (and again at shutdown)
//
// Overload controls (all optional; defaults reproduce the un-governed
// server — see README "Operating limits"):
//
//   --max-sessions N       shed create/resume past N live sessions
//   --max-pending-asks N   shed asks requesting more than N candidates
//   --max-refit-queue N    defer background refits past N in flight
//   --ask-deadline-ms N    serve asks degraded (stale model / random) when
//                          the fresh refit is not ready within N ms
//                          (-1 = block, the legacy behavior)
//   --memory-budget-mb N   evict idle sessions to checkpoint past N MiB
//                          (requires --checkpoint-dir)
//   --refit-watchdog-ms N  cancel refits running longer than N ms
//   --refit-retries N      cancelled-refit retries before quarantine
//   --retry-after-ms N     back-off hint attached to overloaded errors
//
// Network resilience (see DESIGN.md §15): framed `pwu1 <len> <crc32>`
// requests are accepted automatically and {"op":"hello","frame":true}
// flips responses to framed; --idempotency-window N sizes the per-session
// dedup window for client idempotency keys (0 disables).

#include <cstdlib>
#include <iostream>
#include <string>

#include "service/protocol.hpp"
#include "util/killpoints.hpp"
#include "util/thread_pool.hpp"

namespace {

bool parse_count(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0' && out >= 0;
}

/// parse_count that additionally admits -1 (for --ask-deadline-ms).
bool parse_deadline(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0' && out >= -1;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = serve single-threaded (refits inline)
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 0;
  long idempotency_window = -1;  // -1 = keep the manager default
  pwu::service::ServiceLimits limits;
  struct CountFlag {
    const char* name;
    std::size_t* target;
  };
  const CountFlag count_flags[] = {
      {"--max-sessions", &limits.max_sessions},
      {"--max-pending-asks", &limits.max_pending_asks},
      {"--max-refit-queue", &limits.max_refit_queue},
      {"--refit-retries", &limits.refit_retries},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const CountFlag& flag : count_flags) {
      if (arg == flag.name && i + 1 < argc) {
        long v = 0;
        if (!parse_count(argv[++i], v)) {
          std::cerr << "pwu_serve: " << flag.name
                    << " expects a non-negative integer, got '" << argv[i]
                    << "'\n";
          return 1;
        }
        *flag.target = static_cast<std::size_t>(v);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (arg == "--threads" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --threads expects a non-negative integer, "
                     "got '" << argv[i] << "'\n";
        return 1;
      }
      threads = static_cast<unsigned>(v);
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --checkpoint-every expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      checkpoint_every = static_cast<std::size_t>(v);
    } else if (arg == "--ask-deadline-ms" && i + 1 < argc) {
      long v = 0;
      if (!parse_deadline(argv[++i], v)) {
        std::cerr << "pwu_serve: --ask-deadline-ms expects an integer >= -1, "
                     "got '" << argv[i] << "'\n";
        return 1;
      }
      limits.ask_deadline_ms = v;
    } else if (arg == "--memory-budget-mb" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --memory-budget-mb expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      limits.memory_budget_bytes =
          static_cast<std::size_t>(v) * std::size_t{1024} * 1024;
    } else if (arg == "--refit-watchdog-ms" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --refit-watchdog-ms expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      limits.refit_watchdog_ms = v;
    } else if (arg == "--kill-at" && i + 1 < argc) {
      // Chaos-only: arm a deterministic kill point (see
      // src/util/killpoints.hpp) so the multi-process harness can crash
      // this worker at an exact instant. NAME[:HITS] dies on the
      // (HITS+1)-th pass of the point; the KillSignal deliberately
      // escapes every recovery layer and terminates the process.
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      std::string point = spec.substr(0, colon);
      long hits = 0;
      if (colon != std::string::npos &&
          !parse_count(spec.c_str() + colon + 1, hits)) {
        std::cerr << "pwu_serve: --kill-at expects NAME[:HITS] with a "
                     "non-negative HITS, got '" << spec << "'\n";
        return 1;
      }
      if (point.empty()) {
        std::cerr << "pwu_serve: --kill-at expects NAME[:HITS], got '" << spec
                  << "'\n";
        return 1;
      }
      pwu::util::arm_killpoint(point, static_cast<int>(hits));
    } else if (arg == "--idempotency-window" && i + 1 < argc) {
      // Per-session count of remembered (idem key -> reply) pairs; 0
      // disables wire-level dedup entirely.
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --idempotency-window expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      idempotency_window = v;
    } else if (arg == "--retry-after-ms" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --retry-after-ms expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      limits.retry_after_ms = v;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pwu_serve [--threads N] [--checkpoint-dir DIR "
                   "--checkpoint-every N]\n"
                   "                 [--max-sessions N] [--max-pending-asks N] "
                   "[--max-refit-queue N]\n"
                   "                 [--ask-deadline-ms N|-1] "
                   "[--memory-budget-mb N]\n"
                   "                 [--refit-watchdog-ms N] "
                   "[--refit-retries N] [--retry-after-ms N]\n"
                   "                 [--idempotency-window N]   (per-session "
                   "dedup keys; 0 disables)\n"
                   "                 [--kill-at NAME[:HITS]]   (chaos "
                   "testing: crash at an armed kill point)\n"
                   "Reads one JSON request per line on stdin, writes one "
                   "JSON response per line on stdout.\n"
                   "With --checkpoint-dir, every session is atomically "
                   "checkpointed to DIR/<session>.ckpt every N tells.\n"
                   "Overload flags cap live sessions, ask sizes, refit "
                   "concurrency, and memory; capped\n"
                   "requests answer {\"ok\":false,\"overloaded\":true,"
                   "\"retry_after_ms\":N} instead of blocking.\n";
      return 0;
    } else {
      std::cerr << "pwu_serve: unrecognized argument: " << arg << "\n";
      return 1;
    }
  }
  if (checkpoint_every != 0 && checkpoint_dir.empty()) {
    std::cerr << "pwu_serve: --checkpoint-every requires --checkpoint-dir\n";
    return 1;
  }
  if (limits.memory_budget_bytes != 0 && checkpoint_dir.empty()) {
    // The budget is enforced by evicting idle sessions *to checkpoint*;
    // without a directory there is nowhere to evict to.
    std::cerr << "pwu_serve: --memory-budget-mb requires --checkpoint-dir\n";
    return 1;
  }
  if (!checkpoint_dir.empty() && checkpoint_every == 0) checkpoint_every = 1;
  try {
    const auto configure = [&](pwu::service::SessionManager& manager) {
      if (checkpoint_every != 0) {
        manager.enable_auto_checkpoint(checkpoint_dir, checkpoint_every);
      }
      if (idempotency_window >= 0) {
        manager.set_idempotency_window(
            static_cast<std::size_t>(idempotency_window));
      }
    };
    if (threads > 1) {
      pwu::util::ThreadPool workers(threads);
      pwu::service::SessionManager manager(&workers, limits);
      configure(manager);
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    } else {
      pwu::service::SessionManager manager(nullptr, limits);
      configure(manager);
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    }
  } catch (const std::exception& e) {
    std::cerr << "pwu_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
