// pwu_serve — JSON-lines tuning service over stdin/stdout.
//
// One request object per line in, one response per line out (see
// src/service/protocol.hpp for the vocabulary). Pipe-friendly:
//
//   printf '%s\n' \
//     '{"op":"create","session":"s","workload":"atax","n_max":30,"pool_size":200,"seed":7}' \
//     '{"op":"ask","session":"s"}' \
//     '{"op":"shutdown"}' | pwu_serve
//
//   pwu_serve --threads 8     # worker pool for parallel session refits
//   pwu_serve --checkpoint-dir /var/lib/pwu --checkpoint-every 5
//     # crash safety: atomically checkpoint each session to
//     # <dir>/<session>.ckpt every 5 tells (and again at shutdown)

#include <cstdlib>
#include <iostream>
#include <string>

#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace {

bool parse_count(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0' && out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = serve single-threaded (refits inline)
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --threads expects a non-negative integer, "
                     "got '" << argv[i] << "'\n";
        return 1;
      }
      threads = static_cast<unsigned>(v);
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      long v = 0;
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_serve: --checkpoint-every expects a non-negative "
                     "integer, got '" << argv[i] << "'\n";
        return 1;
      }
      checkpoint_every = static_cast<std::size_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pwu_serve [--threads N] [--checkpoint-dir DIR "
                   "--checkpoint-every N]\n"
                   "Reads one JSON request per line on stdin, writes one "
                   "JSON response per line on stdout.\n"
                   "With --checkpoint-dir, every session is atomically "
                   "checkpointed to DIR/<session>.ckpt every N tells.\n";
      return 0;
    } else {
      std::cerr << "pwu_serve: unrecognized argument: " << arg << "\n";
      return 1;
    }
  }
  if (checkpoint_every != 0 && checkpoint_dir.empty()) {
    std::cerr << "pwu_serve: --checkpoint-every requires --checkpoint-dir\n";
    return 1;
  }
  if (!checkpoint_dir.empty() && checkpoint_every == 0) checkpoint_every = 1;
  try {
    if (threads > 1) {
      pwu::util::ThreadPool workers(threads);
      pwu::service::SessionManager manager(&workers);
      if (checkpoint_every != 0) {
        manager.enable_auto_checkpoint(checkpoint_dir, checkpoint_every);
      }
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    } else {
      pwu::service::SessionManager manager(nullptr);
      if (checkpoint_every != 0) {
        manager.enable_auto_checkpoint(checkpoint_dir, checkpoint_every);
      }
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    }
  } catch (const std::exception& e) {
    std::cerr << "pwu_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
