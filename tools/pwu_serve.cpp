// pwu_serve — JSON-lines tuning service over stdin/stdout.
//
// One request object per line in, one response per line out (see
// src/service/protocol.hpp for the vocabulary). Pipe-friendly:
//
//   printf '%s\n' \
//     '{"op":"create","session":"s","workload":"atax","n_max":30,"pool_size":200,"seed":7}' \
//     '{"op":"ask","session":"s"}' \
//     '{"op":"shutdown"}' | pwu_serve
//
//   pwu_serve --threads 8     # worker pool for parallel session refits

#include <cstdlib>
#include <iostream>
#include <string>

#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = serve single-threaded (refits inline)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      const long v = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || v < 0) {
        std::cerr << "pwu_serve: --threads expects a non-negative integer, "
                     "got '" << text << "'\n";
        return 1;
      }
      threads = static_cast<unsigned>(v);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pwu_serve [--threads N]\n"
                   "Reads one JSON request per line on stdin, writes one "
                   "JSON response per line on stdout.\n";
      return 0;
    } else {
      std::cerr << "pwu_serve: unrecognized argument: " << arg << "\n";
      return 1;
    }
  }
  try {
    if (threads > 1) {
      pwu::util::ThreadPool workers(threads);
      pwu::service::SessionManager manager(&workers);
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    } else {
      pwu::service::SessionManager manager(nullptr);
      pwu::service::run_serve_loop(std::cin, std::cout, manager);
    }
  } catch (const std::exception& e) {
    std::cerr << "pwu_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
