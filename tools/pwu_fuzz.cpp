// pwu_fuzz — seeded, dependency-free protocol fuzzer.
//
// Mutates valid JSON-lines frames (truncation, splicing, byte flips, type
// swaps, oversized blobs, deep nesting, huge numbers) and feeds them to the
// in-process serve loop — the same handle_request pwu_serve runs. The
// invariant under test: *every* input line yields exactly one structured
// response carrying "ok" (true or false); the server never crashes, hangs,
// or emits garbage, and a session created before the hostile lines still
// answers afterwards.
//
//   pwu_fuzz --iters 300 --seed 1     # one deterministic campaign
//   pwu_fuzz --iters 20000            # the check.sh soak campaign
//
// Exit status 0 = all invariants held; 1 = a violation (the offending
// input and response are printed); 2 = usage error. Deterministic per
// (--seed, --iters): failures reproduce exactly.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace pwu;
namespace json = util::json;

/// Valid frames the mutator starts from — every op the protocol knows,
/// plus the session lifecycle around them.
std::vector<std::string> seed_corpus() {
  return {
      R"({"op":"create","session":"fz","workload":"gesummv","n_init":4,"n_batch":2,"n_max":8,"pool_size":40,"test_size":0,"trees":4,"seed":7})",
      R"({"op":"ask","session":"fz","count":2})",
      R"({"op":"ask","session":"fz","count":1,"deadline_ms":50})",
      R"({"op":"tell","session":"fz","levels":[1,2,0],"time":0.25})",
      R"({"op":"tell","session":"fz","levels":[1,2,0],"status":"crash","cost":0.1})",
      R"({"op":"status","session":"fz"})",
      R"({"op":"list"})",
      R"({"op":"health"})",
      R"({"op":"checkpoint","session":"fz","path":"/tmp/pwu_fuzz.ckpt"})",
      R"({"op":"resume","session":"fz","path":"/tmp/pwu_fuzz.ckpt"})",
      R"({"op":"close","session":"fz"})",
  };
}

std::string random_junk(util::Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  }
  return out;
}

/// One mutated line. Mutations deliberately include frames that are still
/// valid JSON (type swaps, huge numbers) — the parser accepting them must
/// not mean the dispatcher crashes on them.
std::string mutate(const std::vector<std::string>& corpus, util::Rng& rng) {
  const std::string& base =
      corpus[rng.uniform_int(0, static_cast<int>(corpus.size()) - 1)];
  switch (rng.uniform_int(0, 9)) {
    case 0: {  // truncate mid-frame
      if (base.size() < 2) return base;
      return base.substr(
          0, static_cast<std::size_t>(
                 rng.uniform_int(1, static_cast<int>(base.size()) - 1)));
    }
    case 1: {  // splice two frames together
      const std::string& other =
          corpus[rng.uniform_int(0, static_cast<int>(corpus.size()) - 1)];
      const std::size_t cut_a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(base.size())));
      const std::size_t cut_b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(other.size())));
      return base.substr(0, cut_a) + other.substr(cut_b);
    }
    case 2: {  // flip random bytes
      std::string out = base;
      const int flips = rng.uniform_int(1, 8);
      for (int i = 0; i < flips; ++i) {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(out.size()) - 1));
        out[at] = static_cast<char>(rng.uniform_int(1, 255));
      }
      return out;
    }
    case 3: {  // type swap: numbers become strings/objects and vice versa
      std::string out = base;
      const std::size_t colon = out.find(':');
      if (colon == std::string::npos || colon + 1 >= out.size()) return out;
      static const char* swaps[] = {"null", "[[]]", "\"x\"", "-0.0", "1e308",
                                    "true"};
      out.replace(colon + 1, 1, swaps[rng.uniform_int(0, 5)]);
      return out;
    }
    case 4: {  // oversized blob (16 MB line; must be shed, not parsed)
      std::string out =
          R"({"op":"create","session":")";
      out.append(std::size_t{16} * 1024 * 1024, 'a');
      out += R"(","workload":"gesummv"})";
      return out;
    }
    case 5: {  // nesting bomb
      const int depth = rng.uniform_int(50, 4000);
      std::string out = R"({"op":"ask","session":)";
      out.append(static_cast<std::size_t>(depth), '[');
      out.append(static_cast<std::size_t>(depth), ']');
      out.push_back('}');
      return out;
    }
    case 6: {  // huge / degenerate numbers in size fields
      static const char* numbers[] = {"1e300",        "9007199254740993",
                                      "2.5",          "-1e-300",
                                      "184467440737095516160", "1e999"};
      std::string out = R"({"op":"create","session":"fz","workload":"gesummv","pool_size":)";
      out += numbers[rng.uniform_int(0, 5)];
      out.push_back('}');
      return out;
    }
    case 7:  // pure junk bytes
      return random_junk(rng, static_cast<std::size_t>(rng.uniform_int(1, 256)));
    case 8: {  // valid JSON, hostile strings (escapes, control chars, paths)
      static const char* lines[] = {
          R"({"op":"create","session":"../../etc/x","workload":"gesummv"})",
          R"({"op":"create","session":"fz\u0001z","workload":"gesummv"})",
          R"({"op":"resume","session":"fz","path":"/dev/null"})",
          R"({"op":"checkpoint","session":"fz","path":""})",
          R"({"op":"tell","session":"fz","levels":[4294967296],"time":1})",
          R"({"op":"tell","session":"fz","levels":"notanarray","time":1})",
          R"({"op":"ask","session":"fz","deadline_ms":1e300})",
          R"({"op":"create","session":"fz2","workload":"gesummv","seed":"notanumber"})",
      };
      return lines[rng.uniform_int(0, 7)];
    }
    default:  // pass a valid frame through unchanged (keeps state moving)
      return base;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 300;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc) {
      iters = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pwu_fuzz [--iters N] [--seed N]\n"
                   "Feeds N mutated protocol lines to the in-process serve "
                   "loop and checks that\nevery line yields a structured "
                   "response and the server survives.\n";
      return 0;
    } else {
      std::cerr << "pwu_fuzz: unrecognized argument: " << arg << "\n";
      return 2;
    }
  }

  util::Rng rng(seed);
  const std::vector<std::string> corpus = seed_corpus();

  // Low caps so the overloaded paths get fuzzed too, not just the parser.
  service::ServiceLimits limits;
  limits.max_sessions = 4;
  limits.max_pending_asks = 8;
  limits.ask_deadline_ms = 0;
  service::SessionManager manager(nullptr, limits);

  std::size_t violations = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    const std::string line = mutate(corpus, rng);
    std::istringstream in(line + "\n");
    std::ostringstream out;
    try {
      service::run_serve_loop(in, out, manager);
    } catch (const std::exception& e) {
      std::cerr << "pwu_fuzz: iteration " << i
                << ": serve loop threw: " << e.what() << "\n  input: "
                << line.substr(0, 200) << "\n";
      ++violations;
      continue;
    }
    // Every non-blank input line (mutations may embed raw newlines, i.e.
    // several lines per iteration) must have produced exactly one parseable
    // JSON object carrying "ok" — no more, no fewer.
    std::size_t expected = 0;
    {
      std::istringstream inputs(line);
      std::string input_line;
      while (std::getline(inputs, input_line)) {
        if (input_line.find_first_not_of(" \t\r") != std::string::npos) {
          ++expected;
        }
      }
    }
    std::istringstream replies(out.str());
    std::string reply;
    std::size_t reply_count = 0;
    bool reply_ok = true;
    while (std::getline(replies, reply)) {
      ++reply_count;
      try {
        const json::Value parsed = json::parse(reply);
        if (!parsed.at("ok").is_bool()) reply_ok = false;
      } catch (const std::exception&) {
        reply_ok = false;
      }
    }
    if (reply_count != expected || !reply_ok) {
      std::cerr << "pwu_fuzz: iteration " << i << ": bad reply ("
                << reply_count << " lines)\n  input: " << line.substr(0, 200)
                << "\n  output: " << out.str().substr(0, 200) << "\n";
      ++violations;
    }
  }

  // The manager must still be functional after the campaign: a fresh
  // session created and asked through the same loop answers ok:true.
  {
    std::istringstream in(
        R"({"op":"close","session":"post"})"
        "\n"
        R"({"op":"create","session":"post","workload":"gesummv","n_init":2,"n_batch":1,"n_max":4,"pool_size":20,"seed":3})"
        "\n"
        R"({"op":"ask","session":"post"})"
        "\n");
    std::ostringstream out;
    service::run_serve_loop(in, out, manager);
    std::istringstream replies(out.str());
    std::string reply;
    std::getline(replies, reply);  // close (either outcome is fine)
    bool alive = true;
    for (int i = 0; i < 2 && alive; ++i) {
      if (!std::getline(replies, reply)) {
        alive = false;
        break;
      }
      try {
        const json::Value parsed = json::parse(reply);
        const json::Value& ok = parsed.at("ok");
        // create may shed at the session cap (structured refusal is a
        // pass); anything unparseable or ok-less is not.
        alive = ok.is_bool() &&
                (ok.as_bool() || parsed.bool_or("overloaded", false));
      } catch (const std::exception&) {
        alive = false;
      }
    }
    if (!alive) {
      std::cerr << "pwu_fuzz: server unusable after campaign\n  output: "
                << out.str().substr(0, 400) << "\n";
      ++violations;
    }
  }

  if (violations != 0) {
    std::cerr << "pwu_fuzz: " << violations << " violation(s) in " << iters
              << " iterations (seed " << seed << ")\n";
    return 1;
  }
  std::cout << "pwu_fuzz: " << iters << " iterations survived (seed " << seed
            << ")\n";
  return 0;
}
