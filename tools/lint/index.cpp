#include "index.hpp"

#include <algorithm>
#include <set>

namespace pwu::lint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",      "bool",     "break",
      "case",      "catch",    "char",      "class",    "const",
      "consteval", "constexpr","constinit", "continue", "co_await",
      "co_return", "co_yield", "decltype",  "default",  "delete",
      "do",        "double",   "dynamic_cast", "else",  "enum",
      "explicit",  "export",   "extern",    "false",    "final",
      "float",     "for",      "friend",    "goto",     "if",
      "inline",    "int",      "long",      "mutable",  "namespace",
      "new",       "noexcept", "nullptr",   "operator", "override",
      "private",   "protected","public",    "register", "reinterpret_cast",
      "requires",  "return",   "short",     "signed",   "sizeof",
      "static",    "static_assert", "static_cast", "struct", "switch",
      "template",  "this",     "thread_local", "throw", "true",
      "try",       "typedef",  "typeid",    "typename", "union",
      "unsigned",  "using",    "virtual",   "void",     "volatile",
      "wchar_t",   "while",
  };
  return kKeywords.count(s) != 0;
}

bool is_mutex_type_token(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "recursive_timed_mutex";
}

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

/// `i` points at the opening token; returns the index just past the matching
/// close (or tokens.size() when unbalanced).
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  std::size_t depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == open) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// `i` points at '<'. Skips a template-argument group, tolerating nested
/// parens/angles. Bails (returns i + 1) on ';', '{' or after 200 tokens so a
/// stray comparison operator cannot swallow the file.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  const std::size_t limit = std::min(t.size(), i + 200);
  for (std::size_t k = i; k < limit; ++k) {
    const std::string& s = t[k].text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return k + 1;
    } else if (s == ";" || s == "{") {
      break;
    } else if (s == "(") {
      k = skip_balanced(t, k, "(", ")") - 1;
    }
  }
  return i + 1;
}

std::string join_tokens(const std::vector<Token>& t, std::size_t b,
                        std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (!out.empty() && t[i].kind == TokKind::Ident &&
        !out.empty() && is_ident_char(out.back())) {
      out += ' ';
    }
    out += t[i].text;
  }
  return out;
}

/// Extracts a PWU_GUARDED_BY / PWU_RNG_STREAM argument from a token slice.
std::string annotation_arg(const std::vector<Token>& t, std::size_t b,
                           std::size_t e, const char* macro) {
  for (std::size_t i = b; i + 2 < e && i + 2 < t.size(); ++i) {
    if (t[i].text == macro && t[i + 1].text == "(" &&
        t[i + 2].kind == TokKind::Ident) {
      return t[i + 2].text;
    }
  }
  return {};
}

/// True when the slice has a '(' that is not an annotation macro's argument
/// list — the test for "this declaration is a function, not a field".
/// `util::Rng r_ PWU_RNG_STREAM(x);` must still parse as a field.
bool has_non_annotation_paren(const std::vector<Token>& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "(") continue;
    if (i > 0 && (t[i - 1].text == "PWU_RNG_STREAM" ||
                  t[i - 1].text == "PWU_GUARDED_BY")) {
      continue;
    }
    return true;
  }
  return false;
}

bool slice_contains(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    const char* text) {
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (t[i].text == text) return true;
  }
  return false;
}

/// Walks a receiver chain backwards from `i` (the token before '.', '->' or
/// '::'), collecting identifiers and skipping balanced []/() groups, and
/// returns the chain joined with '.' (e.g. "entry.session").
std::string receiver_chain(const std::vector<Token>& t, std::size_t i) {
  std::vector<std::string> parts;
  std::size_t k = i;
  while (true) {
    // Skip trailing subscript/call groups backwards: ...foo()[] .
    while (k != npos && (t[k].text == ")" || t[k].text == "]")) {
      const std::string open = t[k].text == ")" ? "(" : "[";
      std::size_t depth = 0;
      while (k != npos) {
        if (t[k].text == ")" || t[k].text == "]") ++depth;
        if (t[k].text == "(" || t[k].text == "[") {
          if (--depth == 0) break;
        }
        k = k == 0 ? npos : k - 1;
      }
      if (k == npos) break;
      k = k == 0 ? npos : k - 1;
    }
    if (k == npos || t[k].kind != TokKind::Ident || is_keyword(t[k].text)) {
      if (k != npos && t[k].text == "this") parts.push_back("this");
      break;
    }
    parts.push_back(t[k].text);
    if (k < 2) break;
    const std::string& sep = t[k - 1].text;
    if (sep != "." && sep != "->" && sep != "::") break;
    k -= 2;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += *it;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration parsing
// ---------------------------------------------------------------------------

/// Parses a field declaration accumulated at class scope.
void parse_field(const std::vector<Token>& pending, ClassInfo& cls) {
  if (pending.empty()) return;
  static const char* kSkip[] = {"using", "typedef", "friend",
                                "static_assert", "template", "operator"};
  for (const char* kw : kSkip) {
    if (slice_contains(pending, 0, pending.size(), kw)) return;
  }
  // Declarator name: the last identifier (angle-depth 0) followed by the end
  // of the declaration, '=', '[', or an annotation macro.
  std::size_t name_idx = npos;
  std::size_t angle = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::string& s = pending[i].text;
    if (s == "<") ++angle;
    if (s == ">" && angle > 0) --angle;
    if (angle != 0) continue;
    if (pending[i].kind != TokKind::Ident || is_keyword(s)) continue;
    const bool last = i + 1 == pending.size();
    const std::string next = last ? "" : pending[i + 1].text;
    if (last || next == "=" || next == "[" || next == "PWU_GUARDED_BY" ||
        next == "PWU_RNG_STREAM") {
      name_idx = i;
    }
  }
  if (name_idx == npos) return;

  Field f;
  f.name = pending[name_idx].text;
  f.line = pending[name_idx].line;
  f.type = join_tokens(pending, 0, name_idx);
  for (std::size_t i = 0; i < name_idx; ++i) {
    if (pending[i].kind != TokKind::Ident) continue;
    if (is_mutex_type_token(pending[i].text)) f.is_mutex = true;
    if (pending[i].text == "Rng") f.is_rng = true;
  }
  f.guarded_by =
      annotation_arg(pending, name_idx, pending.size(), "PWU_GUARDED_BY");
  f.rng_stream =
      annotation_arg(pending, name_idx, pending.size(), "PWU_RNG_STREAM");
  cls.fields.push_back(std::move(f));
}

std::vector<Param> parse_params(const std::vector<Token>& t, std::size_t open,
                                std::size_t close) {
  std::vector<Param> params;
  std::size_t b = open + 1;
  std::size_t pd = 0, ad = 0;
  for (std::size_t i = open + 1; i <= close && i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "[" || s == "{") ++pd;
    if (s == ")" || s == "]" || s == "}") {
      if (s == ")" && i == close) {
        // fallthrough: close this param below
      } else {
        if (pd > 0) --pd;
        continue;
      }
    }
    if (s == "<") ++ad;
    if (s == ">" && ad > 0) --ad;
    if ((s == "," && pd == 0 && ad == 0) || i == close) {
      const std::size_t e = i;
      if (e > b) {
        Param p;
        p.rng_stream = annotation_arg(t, b, e, "PWU_RNG_STREAM");
        bool in_default = false;
        std::size_t name_idx = npos;
        for (std::size_t k = b; k < e; ++k) {
          if (t[k].text == "=") in_default = true;
          if (t[k].text == "PWU_RNG_STREAM") break;
          if (in_default) continue;
          if (t[k].kind == TokKind::Ident && !is_keyword(t[k].text)) {
            name_idx = k;
          }
          if (t[k].text == "Rng") p.is_rng = true;
        }
        if (name_idx != npos) {
          p.name = t[name_idx].text;
          p.type = join_tokens(t, b, name_idx);
          // A type with no declarator ("const std::string&") leaves the last
          // type identifier as a bogus name; only a trailing identifier
          // (annotation macros aside) counts as the declarator.
          if (name_idx + 1 < e && t[name_idx + 1].kind == TokKind::Ident &&
              t[name_idx + 1].text != "PWU_RNG_STREAM") {
            p.name.clear();
          }
        }
        params.push_back(std::move(p));
      }
      b = i + 1;
    }
  }
  return params;
}

struct Signature {
  bool ok = false;
  std::string name;
  std::vector<std::string> qual_chain;
  std::size_t paren_open = npos;   // index into pending
  std::size_t paren_close = npos;  // index into pending
  std::size_t line = 0;
};

Signature parse_signature(const std::vector<Token>& pending) {
  Signature sig;
  std::size_t angle = 0;
  for (std::size_t i = 1; i < pending.size(); ++i) {
    const std::string& s = pending[i].text;
    if (s == "<") ++angle;
    if (s == ">" && angle > 0) --angle;
    if (angle != 0 || s != "(") continue;
    const Token& prev = pending[i - 1];
    if (prev.kind != TokKind::Ident || is_keyword(prev.text)) continue;
    sig.name = prev.text;
    sig.line = prev.line;
    sig.paren_open = i;
    sig.paren_close = skip_balanced(pending, i, "(", ")") - 1;
    // Destructor / qualifier chain.
    std::size_t k = i - 1;
    if (k >= 1 && pending[k - 1].text == "~") {
      sig.name = "~" + sig.name;
      --k;
    }
    while (k >= 2 && pending[k - 1].text == "::" &&
           pending[k - 2].kind == TokKind::Ident) {
      sig.qual_chain.insert(sig.qual_chain.begin(), pending[k - 2].text);
      k -= 2;
    }
    sig.ok = true;
    return sig;
  }
  // Operator definitions: name the function "operator" and use the first
  // paren group after the keyword as the parameter list.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].text != "operator") continue;
    for (std::size_t j = i + 1; j < pending.size() && j < i + 6; ++j) {
      if (pending[j].text == "(") {
        // operator() has two groups; the parameter list is the second.
        std::size_t close = skip_balanced(pending, j, "(", ")") - 1;
        if (close + 1 < pending.size() && pending[close + 1].text == "(") {
          j = close + 1;
          close = skip_balanced(pending, j, "(", ")") - 1;
        }
        sig.ok = true;
        sig.name = "operator";
        sig.line = pending[i].line;
        sig.paren_open = j;
        sig.paren_close = close;
        return sig;
      }
    }
    break;
  }
  return sig;
}

// ---------------------------------------------------------------------------
// Function-body event extraction
// ---------------------------------------------------------------------------

struct BodyParser {
  const std::vector<Token>& t;
  const SourceFile& file;
  std::vector<FunctionInfo>& out;  // lambdas appended here

  /// Parses from `i` (just after '{') to the matching '}', filling
  /// `fn.events`. Returns the index just past the closing brace.
  std::size_t parse(FunctionInfo& fn, std::size_t i) {
    std::size_t depth = 1;
    while (i < t.size() && depth > 0) {
      const Token& tok = t[i];
      const std::string& s = tok.text;
      if (s == "{") {
        ++depth;
        push(fn, EventKind::ScopeOpen, tok.line);
        ++i;
        continue;
      }
      if (s == "}") {
        --depth;
        if (depth == 0) return i + 1;
        push(fn, EventKind::ScopeClose, tok.line);
        ++i;
        continue;
      }
      if (s == "[" && lambda_starts_here(i)) {
        const std::size_t after = try_lambda(fn, i);
        if (after != npos) {
          i = after;
          continue;
        }
      }
      if (tok.kind == TokKind::Ident && is_guard_type(s)) {
        const std::size_t after = try_lock_decl(fn, i);
        if (after != npos) {
          i = after;
          continue;
        }
      }
      if (tok.kind == TokKind::Ident && s == "Rng") {
        try_rng_local(fn, i);  // records the event; scanning continues so
                               // initializer draws still produce Call events
      }
      if (tok.kind == TokKind::Ident) {
        handle_ident(fn, i);
      }
      ++i;
    }
    return i;
  }

 private:
  void push(FunctionInfo& fn, EventKind kind, std::size_t line) {
    Event e;
    e.kind = kind;
    e.line = line;
    fn.events.push_back(std::move(e));
  }

  bool lambda_starts_here(std::size_t i) const {
    if (i == 0) return true;
    const Token& prev = t[i - 1];
    if (prev.kind == TokKind::Ident) return is_keyword(prev.text);
    if (prev.kind == TokKind::Punct) {
      return prev.text != ")" && prev.text != "]";
    }
    return false;
  }

  /// Returns the index past the lambda body, or npos when `[` turns out not
  /// to introduce one.
  std::size_t try_lambda(FunctionInfo& fn, std::size_t i) {
    std::size_t j = skip_balanced(t, i, "[", "]");
    if (j >= t.size()) return npos;
    std::size_t po = npos, pc = npos;
    if (t[j].text == "(") {
      po = j;
      pc = skip_balanced(t, j, "(", ")") - 1;
      j = pc + 1;
    }
    // Skip mutable/noexcept/-> trailing-return up to the body brace.
    const std::size_t limit = std::min(t.size(), j + 40);
    while (j < limit) {
      const std::string& s = t[j].text;
      if (s == "{") break;
      if (s == ";" || s == "," || s == ")" || s == "}" || s == "=") {
        return npos;
      }
      if (s == "(") {
        j = skip_balanced(t, j, "(", ")");
        continue;
      }
      if (s == "<") {
        j = skip_angles(t, j);
        continue;
      }
      ++j;
    }
    if (j >= limit || t[j].text != "{") return npos;

    FunctionInfo lam;
    lam.name = "<lambda>";
    lam.qual = fn.qual + "::<lambda@" + std::to_string(t[i].line) + ">";
    lam.scopes = fn.scopes;
    lam.class_name = fn.class_name;
    lam.file = fn.file;
    lam.line = t[i].line;
    lam.is_lambda = true;
    if (po != npos) lam.params = parse_params(t, po, pc);
    const std::size_t end = parse(lam, j + 1);
    out.push_back(std::move(lam));
    return end;
  }

  /// lock_guard/unique_lock/scoped_lock/shared_lock declaration at `i`.
  std::size_t try_lock_decl(FunctionInfo& fn, std::size_t i) {
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") j = skip_angles(t, j);
    if (j >= t.size() || t[j].kind != TokKind::Ident ||
        is_keyword(t[j].text)) {
      return npos;
    }
    const std::string guard_var = t[j].text;
    std::size_t open = j + 1;
    if (open >= t.size() ||
        (t[open].text != "(" && t[open].text != "{")) {
      return npos;
    }
    const char* close_text = t[open].text == "(" ? ")" : "}";
    const char* open_text = t[open].text == "(" ? "(" : "{";
    const std::size_t close =
        skip_balanced(t, open, open_text, close_text) - 1;

    Event e;
    e.kind = EventKind::Lock;
    e.line = t[i].line;
    e.guard_var = guard_var;
    e.is_unique_lock = t[i].text == "unique_lock";
    // Split the argument list on top-level commas.
    std::size_t b = open + 1, pd = 0;
    for (std::size_t k = open + 1; k <= close && k < t.size(); ++k) {
      const std::string& s = t[k].text;
      if (s == "(" || s == "[" || s == "{") ++pd;
      if ((s == ")" || s == "]" || s == "}") && k != close) {
        if (pd > 0) --pd;
        continue;
      }
      if ((s == "," && pd == 0) || k == close) {
        const std::string arg = join_tokens(t, b, k);
        if (arg.find("try_to_lock") != std::string::npos) {
          e.try_lock = true;
        } else if (arg.find("defer_lock") != std::string::npos) {
          e.defer_lock = true;
        } else if (arg.find("adopt_lock") == std::string::npos &&
                   !arg.empty()) {
          e.lock_args.push_back(arg);
        }
        b = k + 1;
      }
    }
    fn.events.push_back(std::move(e));
    return close + 1;
  }

  /// Local `util::Rng name ...;` declaration at the `Rng` token.
  void try_rng_local(FunctionInfo& fn, std::size_t i) {
    if (i > 0 && t[i - 1].text == "<") return;  // template argument
    std::size_t j = i + 1;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j >= t.size() || t[j].kind != TokKind::Ident ||
        is_keyword(t[j].text) || t[j].text == "PWU_RNG_STREAM") {
      return;
    }
    const std::size_t name_idx = j;
    // Collect the statement up to ';' at paren depth 0 (bounded).
    const std::size_t limit = std::min(t.size(), j + 120);
    std::size_t pd = 0, stmt_end = npos;
    for (std::size_t k = j + 1; k < limit; ++k) {
      const std::string& s = t[k].text;
      if (s == "(" || s == "[" || s == "{") ++pd;
      if (s == ")" || s == "]" || s == "}") {
        if (pd == 0) return;  // not a declaration statement
        --pd;
      }
      if (s == ";" && pd == 0) {
        stmt_end = k;
        break;
      }
    }
    if (stmt_end == npos) return;
    std::size_t after = name_idx + 1;
    // Optional annotation directly after the declarator.
    std::string stream =
        annotation_arg(t, name_idx, stmt_end, "PWU_RNG_STREAM");
    if (after < stmt_end && t[after].text == "PWU_RNG_STREAM") {
      after = skip_balanced(t, after + 1, "(", ")");
    }
    if (after >= stmt_end) {
      // `util::Rng r;`
      emit_rng_local(fn, t[name_idx], RngInit::Default, "", stream);
      return;
    }
    const std::string& next = t[after].text;
    RngInit init = RngInit::Default;
    std::string source;
    if (next == "=" || next == "(" || next == "{") {
      const std::size_t rb = next == "=" ? after + 1 : after + 1;
      const std::size_t re = next == "=" ? stmt_end : stmt_end;  // bounded
      if (slice_contains(t, rb, re, "fork")) {
        init = RngInit::Fork;
        for (std::size_t k = rb; k < re; ++k) {
          if (t[k].text == "fork" && k > 0 &&
              (t[k - 1].text == "." || t[k - 1].text == "->")) {
            source = receiver_chain(t, k - 2);
            break;
          }
        }
      } else if (next == "=" && rb < re && t[rb].kind == TokKind::Ident) {
        // Copy / alias of another stream: `util::Rng s = session.rng_;`
        init = RngInit::Copy;
        source = receiver_chain(t, re - 1);
      } else if (rb < re) {
        init = RngInit::Seeded;
      }
    }
    emit_rng_local(fn, t[name_idx], init, source, stream);
  }

  void emit_rng_local(FunctionInfo& fn, const Token& name_tok, RngInit init,
                      std::string source, std::string stream) {
    Event e;
    e.kind = EventKind::RngLocal;
    e.line = name_tok.line;
    e.rng_name = name_tok.text;
    e.rng_init = init;
    e.rng_source = std::move(source);
    e.rng_stream = std::move(stream);
    fn.events.push_back(std::move(e));
  }

  void handle_ident(FunctionInfo& fn, std::size_t i) {
    const std::string& s = t[i].text;
    if (is_keyword(s)) return;

    // File opens (killpoint-safety + blocking-under-lock).
    if (s == "ofstream" || s == "fstream" || s == "ifstream") {
      Event e;
      e.kind = EventKind::FileOpen;
      e.line = t[i].line;
      e.write_open = s != "ifstream";
      fn.events.push_back(std::move(e));
      return;
    }
    if (s == "fopen" && i + 1 < t.size() && t[i + 1].text == "(") {
      Event e;
      e.kind = EventKind::FileOpen;
      e.line = t[i].line;
      e.write_open = true;  // mode string is blanked; assume the worst
      fn.events.push_back(std::move(e));
      return;
    }
    if (s == "open" && i > 0 && t[i - 1].text == "::" &&
        (i < 2 || t[i - 2].kind != TokKind::Ident) && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      const std::size_t close = skip_balanced(t, i + 1, "(", ")");
      Event e;
      e.kind = EventKind::FileOpen;
      e.line = t[i].line;
      e.write_open = slice_contains(t, i + 1, close, "O_WRONLY") ||
                     slice_contains(t, i + 1, close, "O_RDWR") ||
                     slice_contains(t, i + 1, close, "O_CREAT") ||
                     slice_contains(t, i + 1, close, "O_TRUNC");
      fn.events.push_back(std::move(e));
      return;
    }

    // Calls: `name(` or `name<...>(`.
    std::size_t paren = npos;
    if (i + 1 < t.size() && t[i + 1].text == "(") {
      paren = i + 1;
    } else if (i + 1 < t.size() && t[i + 1].text == "<") {
      const std::size_t after = skip_angles(t, i + 1);
      if (after > i + 2 && after < t.size() && t[after].text == "(") {
        paren = after;
        // A single-identifier template argument can be one of our classes:
        // `make_unique<AskTellSession>(...)` runs that constructor.
        if (after == i + 4 && t[i + 2].kind == TokKind::Ident &&
            !is_keyword(t[i + 2].text)) {
          Event ctor;
          ctor.kind = EventKind::Call;
          ctor.line = t[i].line;
          ctor.callee = t[i + 2].text;
          fn.events.push_back(std::move(ctor));
        }
      }
    }
    if (paren == npos) return;

    if (s == "killpoint") {
      push(fn, EventKind::Killpoint, t[i].line);
      return;
    }

    Event e;
    e.kind = EventKind::Call;
    e.line = t[i].line;
    e.callee = s;
    if (i >= 2 && t[i - 1].text == "::") {
      if (t[i - 2].kind == TokKind::Ident) {
        e.qual = t[i - 2].text;
      } else {
        e.qual = "::";
      }
    } else if (i >= 2 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
      e.receiver = receiver_chain(t, i - 2);
    } else if (i == 1 && t[0].text == "::") {
      e.qual = "::";
    }
    fn.events.push_back(std::move(e));
  }
};

// ---------------------------------------------------------------------------
// File walking
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { Namespace, Class, Plain } kind = Plain;
  std::string name;
  std::size_t class_index = npos;  // into FileIndex::classes
};

}  // namespace

const Field* ClassInfo::find_field(const std::string& field_name) const {
  for (const Field& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

FileIndex index_file(const SourceFile& file, const std::vector<Token>& t) {
  FileIndex index;
  std::vector<Scope> stack;
  std::vector<Token> pending;

  const auto current_class = [&]() -> std::size_t {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::Class) return it->class_index;
      if (it->kind == Scope::Plain) continue;
      break;  // namespaces end the class chain
    }
    return npos;
  };
  const auto scope_names = [&]() {
    std::vector<std::string> names;
    for (const Scope& s : stack) {
      if (!s.name.empty()) names.push_back(s.name);
    }
    return names;
  };

  std::size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    const std::string& s = tok.text;

    if (s == "template" && i + 1 < t.size() && t[i + 1].text == "<") {
      i = skip_angles(t, i + 1);
      continue;
    }
    if ((s == "public" || s == "private" || s == "protected") &&
        i + 1 < t.size() && t[i + 1].text == ":") {
      pending.clear();
      i += 2;
      continue;
    }
    if (s == ";") {
      const std::size_t cls = current_class();
      if (cls != npos && !has_non_annotation_paren(pending)) {
        parse_field(pending, index.classes[cls]);
      }
      pending.clear();
      ++i;
      continue;
    }
    if (s == "}") {
      if (!stack.empty()) stack.pop_back();
      pending.clear();
      ++i;
      continue;
    }
    if (s != "{") {
      pending.push_back(tok);
      ++i;
      continue;
    }

    // '{' — classify the block from the pending introducer.
    const bool has_namespace =
        slice_contains(pending, 0, pending.size(), "namespace");
    const bool has_enum = slice_contains(pending, 0, pending.size(), "enum");
    // A brace initializer is introduced by a *top-level assignment* '='.
    // Depth matters and compound operators don't count: the '=' of the
    // `!=` inside a ctor init list `ticks_(ticks != nullptr ? ...)` must
    // not reclassify the constructor body as an initializer.
    bool has_equals = false;
    {
      std::size_t depth = 0;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const std::string& p = pending[k].text;
        if (p == "(" || p == "[") {
          ++depth;
        } else if (p == ")" || p == "]") {
          if (depth > 0) --depth;
        } else if (depth == 0 && p == "=") {
          static const std::set<std::string> kOpPrefix = {
              "!", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "="};
          const bool op_prev =
              k > 0 && kOpPrefix.count(pending[k - 1].text) != 0;
          const bool op_next =
              k + 1 < pending.size() && pending[k + 1].text == "=";
          if (!op_prev && !op_next) {
            has_equals = true;
            break;
          }
        }
      }
    }
    std::size_t class_kw = npos, first_paren = npos;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const std::string& p = pending[k].text;
      if (class_kw == npos &&
          (p == "class" || p == "struct" || p == "union")) {
        class_kw = k;
      }
      if (first_paren == npos && p == "(") first_paren = k;
    }

    if (has_namespace) {
      Scope ns;
      ns.kind = Scope::Namespace;
      for (const Token& p : pending) {
        if (p.kind == TokKind::Ident && p.text != "namespace" &&
            p.text != "inline") {
          ns.name = p.text;  // keep the last segment of a::b
        }
      }
      stack.push_back(std::move(ns));
      pending.clear();
      ++i;
      continue;
    }
    if (has_enum) {
      i = skip_balanced(t, i, "{", "}");
      pending.clear();
      continue;
    }
    if (has_equals) {
      // Brace initializer at declaration scope: `int x[] = {...}`.
      i = skip_balanced(t, i, "{", "}");
      continue;  // keep pending; the ';' handler parses the field
    }
    if (class_kw != npos && (first_paren == npos || class_kw < first_paren)) {
      ClassInfo cls;
      cls.file = file.rel_path;
      for (std::size_t k = class_kw + 1; k < pending.size(); ++k) {
        if (pending[k].kind != TokKind::Ident) continue;
        if (pending[k].text == "alignas" || pending[k].text == "final") {
          continue;
        }
        cls.name = pending[k].text;
        cls.line = pending[k].line;
        break;
      }
      std::string prefix;
      const std::size_t outer = current_class();
      if (outer != npos) prefix = index.classes[outer].qual + "::";
      cls.qual = cls.name.empty() ? prefix + "<anon>" : prefix + cls.name;
      index.classes.push_back(std::move(cls));

      Scope sc;
      sc.kind = Scope::Class;
      sc.name = index.classes.back().name;
      sc.class_index = index.classes.size() - 1;
      stack.push_back(std::move(sc));
      pending.clear();
      ++i;
      continue;
    }
    if (first_paren != npos) {
      Signature sig = parse_signature(pending);
      if (!sig.ok) {
        i = skip_balanced(t, i, "{", "}");
        pending.clear();
        continue;
      }
      FunctionInfo fn;
      fn.name = sig.name;
      fn.file = file.rel_path;
      fn.line = sig.line;
      fn.scopes = scope_names();
      for (const std::string& q : sig.qual_chain) fn.scopes.push_back(q);
      const std::size_t cls = current_class();
      if (cls != npos) {
        fn.class_name = index.classes[cls].name;
      } else if (!sig.qual_chain.empty()) {
        fn.class_name = sig.qual_chain.back();  // validated project-wide
      }
      std::string qual_prefix;
      for (const std::string& q : sig.qual_chain) qual_prefix += q + "::";
      if (cls != npos && sig.qual_chain.empty()) {
        qual_prefix = index.classes[cls].qual + "::";
      }
      fn.qual = qual_prefix + fn.name;
      fn.params = parse_params(pending, sig.paren_open, sig.paren_close);

      BodyParser parser{t, file, index.functions};
      const std::size_t end = parser.parse(fn, i + 1);
      index.functions.push_back(std::move(fn));
      pending.clear();
      i = end;
      continue;
    }
    if (current_class() != npos && !pending.empty()) {
      // Default member initializer: `std::size_t cap{64};`
      i = skip_balanced(t, i, "{", "}");
      continue;  // keep pending for the ';' handler
    }
    Scope plain;
    plain.kind = Scope::Plain;
    stack.push_back(std::move(plain));
    pending.clear();
    ++i;
  }
  return index;
}

// ---------------------------------------------------------------------------
// Project index
// ---------------------------------------------------------------------------

const ClassInfo* ProjectIndex::find_class(const std::string& qual_or_name) const {
  const ClassInfo* by_name = nullptr;
  std::size_t name_matches = 0;
  for (const ClassInfo& c : classes) {
    if (c.qual == qual_or_name) return &c;
    if (c.name == qual_or_name) {
      by_name = &c;
      ++name_matches;
    }
  }
  return name_matches == 1 ? by_name : nullptr;
}

std::vector<std::size_t> ProjectIndex::resolve_call(const FunctionInfo& caller,
                                                    const Event& call) const {
  std::vector<std::size_t> out;
  if (call.callee.empty()) return out;
  // std:: and global-namespace calls are never project functions.
  if (call.qual == "std" || call.qual == "::") return out;
  auto range = functions_by_name.equal_range(call.callee);
  for (auto it = range.first; it != range.second; ++it) out.push_back(it->second);
  if (out.empty()) return out;

  const auto narrow = [&](auto keep) {
    std::vector<std::size_t> kept;
    for (std::size_t idx : out) {
      if (keep(functions[idx])) kept.push_back(idx);
    }
    if (!kept.empty()) out = std::move(kept);
  };

  if (!call.qual.empty()) {
    narrow([&](const FunctionInfo& fn) {
      if (fn.class_name == call.qual) return true;
      return std::find(fn.scopes.begin(), fn.scopes.end(), call.qual) !=
             fn.scopes.end();
    });
    return out;
  }
  if (!call.receiver.empty()) {
    std::string last = call.receiver;
    const std::size_t dot = last.find_last_of('.');
    if (dot != std::string::npos) last = last.substr(dot + 1);
    if (last == "this") {
      if (!caller.class_name.empty()) {
        narrow([&](const FunctionInfo& fn) {
          return fn.class_name == caller.class_name;
        });
      }
      return out;
    }
    // Type the receiver through any field with that name: the field's type
    // text usually names one of our classes (possibly behind a smart
    // pointer), which pins down the owner.
    bool field_seen = false;
    std::set<std::string> owners;
    for (const ClassInfo& c : classes) {
      const Field* f = c.find_field(last);
      if (f == nullptr) continue;
      field_seen = true;
      for (const auto& entry : classes_by_name) {
        // Token-boundary containment so "Session" never matches
        // "AskTellSession".
        const std::string& type = f->type;
        std::size_t pos = 0;
        while ((pos = type.find(entry.first, pos)) != std::string::npos) {
          const bool l = pos == 0 || !is_ident_char(type[pos - 1]);
          const std::size_t after = pos + entry.first.size();
          const bool r = after >= type.size() || !is_ident_char(type[after]);
          if (l && r) {
            owners.insert(entry.first);
            break;
          }
          ++pos;
        }
      }
    }
    if (field_seen) {
      // The receiver is typed. Resolve strictly: only methods of the named
      // classes qualify, and a field whose type names no project class (a
      // std container, a string, ...) resolves to nothing — `sessions_` is
      // a std::map, so `sessions_.size()` must never reach a project
      // `size()`. Silence beats noise.
      std::vector<std::size_t> kept;
      for (std::size_t idx : out) {
        if (owners.count(functions[idx].class_name) != 0) kept.push_back(idx);
      }
      return kept;
    }
    // Untyped receiver (a local or parameter the index cannot see through):
    // ubiquitous std method names need positive type evidence before they
    // may resolve to a project function of the same name.
    static const std::set<std::string> kStdMethods = {
        "size",     "empty",    "clear",   "reserve",  "resize",
        "begin",    "end",      "rbegin",  "rend",     "push_back",
        "pop_back", "emplace_back", "emplace", "insert", "erase",
        "find",     "count",    "at",      "front",    "back",
        "data",     "str",      "c_str",   "length",   "substr",
        "append",   "swap",     "get",     "reset",    "release",
        "push",     "pop",      "top",     "assign",   "contains",
        "value",    "has_value", "push_front", "pop_front",
        "emplace_front",
        // Streams, futures, and condition variables:
        "open",     "close",    "is_open", "good",     "eof",
        "flush",    "valid",    "wait",    "wait_for", "wait_until",
        "notify_one", "notify_all",
    };
    if (kStdMethods.count(call.callee) != 0) return {};
    return out;
  }
  // Bare call: the caller's own class or a free function — strictly. A
  // bare name can never invoke another class's method, so when neither
  // matches, the callee is not a project function at all (a syscall like
  // close(fd), an ADL helper, ...). Silence beats noise.
  std::vector<std::size_t> kept;
  for (std::size_t idx : out) {
    const FunctionInfo& fn = functions[idx];
    if (fn.class_name.empty() ||
        (!caller.class_name.empty() && fn.class_name == caller.class_name)) {
      kept.push_back(idx);
    }
  }
  return kept;
}

std::string ProjectIndex::canonical_mutex(const FunctionInfo& fn,
                                          const std::string& raw_expr) const {
  // Last identifier of the expression.
  std::string name;
  std::size_t e = raw_expr.size();
  while (e > 0 && !is_ident_char(raw_expr[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(raw_expr[b - 1])) --b;
  name = raw_expr.substr(b, e - b);
  if (name.empty()) name = raw_expr;

  // 1. A mutex member of the owner class.
  if (!fn.class_name.empty()) {
    for (const ClassInfo& c : classes) {
      if (c.name != fn.class_name) continue;
      const Field* f = c.find_field(name);
      if (f != nullptr && f->is_mutex) return c.qual + "::" + name;
    }
  }
  // 2. A mutex member of a class declared in a same-stem file.
  const std::string stem = file_stem(fn.file);
  for (const ClassInfo& c : classes) {
    if (file_stem(c.file) != stem) continue;
    const Field* f = c.find_field(name);
    if (f != nullptr && f->is_mutex) return c.qual + "::" + name;
  }
  // 3. Unique across the project.
  const ClassInfo* unique = nullptr;
  for (const ClassInfo& c : classes) {
    const Field* f = c.find_field(name);
    if (f != nullptr && f->is_mutex) {
      if (unique != nullptr) {
        unique = nullptr;
        break;
      }
      unique = &c;
    }
  }
  if (unique != nullptr) return unique->qual + "::" + name;
  // 4. File-scoped identity.
  return stem + "::" + name;
}

ProjectIndex build_project_index(std::vector<FileIndex> file_indices) {
  ProjectIndex project;
  for (FileIndex& fi : file_indices) {
    for (ClassInfo& c : fi.classes) project.classes.push_back(std::move(c));
    for (FunctionInfo& f : fi.functions) {
      project.functions.push_back(std::move(f));
    }
  }
  for (std::size_t i = 0; i < project.classes.size(); ++i) {
    project.classes_by_name[project.classes[i].name].push_back(i);
  }
  for (std::size_t i = 0; i < project.functions.size(); ++i) {
    FunctionInfo& fn = project.functions[i];
    // An out-of-line qualifier that names no known class was a namespace.
    if (!fn.class_name.empty() &&
        project.classes_by_name.count(fn.class_name) == 0) {
      fn.class_name.clear();
    }
    if (!fn.is_lambda && !fn.name.empty()) {
      project.functions_by_name.emplace(fn.name, i);
    }
  }
  return project;
}

}  // namespace pwu::lint
