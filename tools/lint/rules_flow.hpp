// pwu_lint flow-aware rules — whole-project analyses over the symbol index:
//
//   lock-graph            cycles in the mutex acquisition-order graph
//   blocking-under-lock   filesystem / Transport / checkpoint-write /
//                         parallel_for reachable while a mutex is held
//   rng-stream-discipline every Rng draw resolves to a PWU_RNG_STREAM-
//                         annotated member/parameter (or a fork/copy of one)
//   killpoint-safety      no killpoint under a lock or with an open
//                         write-mode file stream in scope
//   replicate-write-discipline
//                         replication-path functions (replicate / promote /
//                         import_commit) only write checkpoint images while
//                         holding a ckpt_write_mutex
//   framed-write-discipline
//                         *Transport methods only touch the wire through the
//                         framing layer; raw fd write() outside *frame*
//                         functions is flagged
//
// See rules_flow.cpp for the exact semantics and DESIGN.md §13 for the
// suppression policy.

#pragma once

#include "index.hpp"
#include "lint.hpp"
#include "tokenizer.hpp"

#include <functional>
#include <vector>

namespace pwu::lint {

/// Runs the six flow rules over the project index, appending findings.
/// `rule_on` gates each rule by name; suppression uses each file's parsed
/// directives (same allow grammar as the line rules, plus `blocking-ok`).
void run_flow_rules(const std::vector<SourceFile>& files,
                    const std::vector<Directives>& directives,
                    const ProjectIndex& index,
                    const std::function<bool(const char*)>& rule_on,
                    std::vector<Finding>& findings, std::size_t& suppressed);

}  // namespace pwu::lint
