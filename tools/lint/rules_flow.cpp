// Flow-aware whole-project rules. Shared machinery: a per-function
// simulation walks the indexed event stream with a scope stack, tracking
// which canonical mutexes are held (lock_guard/scoped_lock/shared_lock are
// scope-released; unique_lock additionally honors .unlock()/.lock() on the
// guard variable; try_to_lock acquisitions are held but can never block, so
// they receive no inbound lock-order edges) and which write-mode file
// streams are open. On top of the simulation:
//
//   lock-graph: direct edges (mutex B blocking-acquired while A held) plus
//   call-propagated edges (call made while A held, callee transitively
//   blocking-acquires B). Any cycle — including the length-1 cycle of
//   re-acquiring a mutex already held, the PR-3 nested-parallelism shape —
//   is reported once, with a witness location per edge.
//
//   blocking-under-lock: a blocking primitive (file stream open, fopen/
//   fsync/rename/..., std::filesystem call, ThreadPool::parallel_for, any
//   method of a *Transport class) either directly under a held lock or
//   reachable through the call graph from a call made under a held lock.
//   `// pwu-lint: blocking-ok(reason)` on the flagged line suppresses.
//
//   rng-stream-discipline: every Rng draw must resolve to a PWU_RNG_STREAM-
//   annotated member or parameter, or to a local derived (fork/copy) from
//   one, or carry its own annotation. Unresolvable receivers only count for
//   draw methods unambiguously ours (fork, next_u64, shuffle, ...), so a
//   stray `x.index(i)` on a non-Rng type cannot misfire.
//
//   killpoint-safety: a util::killpoint() site must not execute while a
//   mutex is held or while a write-mode stream opened earlier in the
//   function is still in scope. src/util/fs_atomic.* is exempt from the
//   open-file clause: its killpoints deliberately straddle the torn-tmp-file
//   machinery the chaos harness exists to test.
//
//   replicate-write-discipline: functions on the replication path (name or
//   qualifier containing "replicat", "import_commit", or "promote") may only
//   write checkpoint images — atomic_write_file calls or write-mode stream
//   opens — while holding a mutex whose canonical name contains
//   "ckpt_write_mutex". Replicated records race the primary's own
//   checkpoint writers for the same image files; the write mutex is the
//   only thing keeping a promoted shadow's disk state newest-wins.
//
//   framed-write-discipline: methods of *Transport classes may only touch
//   the wire through the framing layer — a raw fd write() (bare or
//   ::-qualified; stream receivers like `os.write(...)` don't count) in a
//   transport function whose qualified name lacks "frame" is flagged. The
//   pwu1 framing writer owns the length prefix, the CRC, and the
//   short-write/EINTR loop; a second write path would ship unframed or
//   torn bytes the peer's resync logic then has to survive.

#include "rules_flow.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

namespace pwu::lint {
namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool in_src(const std::string& file) { return starts_with(file, "src/"); }

// ---------------------------------------------------------------------------
// Reporting with per-file suppression
// ---------------------------------------------------------------------------

class FlowReporter {
 public:
  FlowReporter(const std::vector<SourceFile>& files,
               const std::vector<Directives>& directives,
               std::vector<Finding>& findings, std::size_t& suppressed)
      : files_(files),
        directives_(directives),
        findings_(findings),
        suppressed_(suppressed) {
    for (std::size_t i = 0; i < files.size(); ++i) {
      by_path_[files[i].rel_path] = i;
    }
  }

  void report(const char* rule, const std::string& file, std::size_t line,
              std::string message) {
    if (!reported_.insert(std::string(rule) + '\t' + file + '\t' +
                          std::to_string(line))
             .second) {
      return;  // one finding per (rule, site)
    }
    const auto it = by_path_.find(file);
    std::string excerpt;
    if (it != by_path_.end()) {
      const Directives& d = directives_[it->second];
      if (d.allowed_file.count(rule) != 0) {
        ++suppressed_;
        return;
      }
      const auto al = d.allowed.find(line);
      if (al != d.allowed.end() && al->second.count(rule) != 0) {
        ++suppressed_;
        return;
      }
      const SourceFile& sf = files_[it->second];
      if (line >= 1 && line <= sf.raw.size()) excerpt = trim(sf.raw[line - 1]);
    }
    Finding f;
    f.rule = rule;
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    f.excerpt = std::move(excerpt);
    findings_.push_back(std::move(f));
  }

 private:
  const std::vector<SourceFile>& files_;
  const std::vector<Directives>& directives_;
  std::vector<Finding>& findings_;
  std::size_t& suppressed_;
  std::map<std::string, std::size_t> by_path_;
  std::set<std::string> reported_;
};

// ---------------------------------------------------------------------------
// Per-function simulation
// ---------------------------------------------------------------------------

struct HeldLock {
  std::string mutex;
  std::size_t line = 0;  // acquisition site
  std::string guard_var;
  bool active = false;
};

struct LockEdge {
  std::string file;
  std::size_t line = 0;
  std::string via;  // callee chain note, "" for a direct nested acquisition
};

struct CallSite {
  std::size_t line = 0;
  std::vector<std::size_t> targets;  // resolved function indices
  std::vector<HeldLock> held;        // active locks at the call
};

struct BlockingSite {
  std::string desc;
  std::size_t line = 0;
  std::vector<HeldLock> held;
};

struct KillpointSite {
  std::size_t line = 0;
  std::vector<HeldLock> held;
  bool open_write_file = false;
  std::size_t open_line = 0;
};

struct WriteSite {
  std::string desc;
  std::size_t line = 0;
  std::vector<HeldLock> held;
};

struct FnFacts {
  std::set<std::string> acquires;  // blocking acquisitions, canonical names
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  std::vector<CallSite> calls;
  std::vector<BlockingSite> blocking;
  std::vector<KillpointSite> killpoints;
  std::vector<WriteSite> writes;  // checkpoint-image write sites
};

bool is_file_call(const std::string& callee) {
  static const std::set<std::string> kFileCalls = {
      "fopen",  "fwrite", "fread",  "fclose", "fsync",
      "fdatasync", "rename", "remove", "unlink", "mkstemp",
  };
  return kFileCalls.count(callee) != 0;
}

std::string classify_blocking_call(const ProjectIndex& index, const Event& ev,
                                   const std::vector<std::size_t>& targets) {
  if (ev.qual == "filesystem" || ev.qual == "fs") {
    return "std::filesystem::" + ev.callee;
  }
  if (is_file_call(ev.callee)) return ev.callee + "()";
  if (ev.callee == "parallel_for") return "ThreadPool::parallel_for";
  for (std::size_t tgt : targets) {
    const std::string& cls = index.functions[tgt].class_name;
    if (cls.size() >= 9 && cls.ends_with("Transport")) {
      return cls + "::" + ev.callee;
    }
  }
  return {};
}

FnFacts simulate(const ProjectIndex& index, const FunctionInfo& fn) {
  FnFacts facts;
  struct Open {
    std::size_t line = 0;
    bool write = false;
    bool active = false;
  };
  struct Frame {
    std::vector<std::size_t> locks;
    std::vector<std::size_t> opens;
  };
  std::vector<HeldLock> held;
  std::vector<Open> opens;
  std::vector<Frame> frames(1);

  const auto active_held = [&]() {
    std::vector<HeldLock> out;
    for (const HeldLock& h : held) {
      if (h.active) out.push_back(h);
    }
    return out;
  };
  const auto add_edges_into = [&](const std::string& to, std::size_t line) {
    for (const HeldLock& h : held) {
      if (!h.active) continue;
      facts.edges.emplace(std::make_pair(h.mutex, to),
                          LockEdge{fn.file, line, ""});
    }
  };

  for (const Event& ev : fn.events) {
    switch (ev.kind) {
      case EventKind::ScopeOpen:
        frames.emplace_back();
        break;
      case EventKind::ScopeClose: {
        if (frames.size() <= 1) break;
        for (std::size_t idx : frames.back().locks) held[idx].active = false;
        for (std::size_t idx : frames.back().opens) opens[idx].active = false;
        frames.pop_back();
        break;
      }
      case EventKind::Lock: {
        const bool blocking = !ev.try_lock && !ev.defer_lock;
        for (const std::string& arg : ev.lock_args) {
          const std::string name = index.canonical_mutex(fn, arg);
          if (blocking) {
            facts.acquires.insert(name);
            add_edges_into(name, ev.line);
          }
          HeldLock h;
          h.mutex = name;
          h.line = ev.line;
          h.guard_var = ev.guard_var;
          h.active = !ev.defer_lock;
          held.push_back(std::move(h));
          frames.back().locks.push_back(held.size() - 1);
        }
        break;
      }
      case EventKind::FileOpen: {
        BlockingSite b;
        b.desc = ev.write_open ? "file stream open (write)"
                               : "file stream open (read)";
        b.line = ev.line;
        b.held = active_held();
        facts.blocking.push_back(std::move(b));
        if (ev.write_open) {
          facts.writes.push_back(
              WriteSite{"write-mode file stream open", ev.line, active_held()});
          Open o;
          o.line = ev.line;
          o.write = true;
          o.active = true;
          opens.push_back(o);
          frames.back().opens.push_back(opens.size() - 1);
        }
        break;
      }
      case EventKind::Killpoint: {
        KillpointSite kp;
        kp.line = ev.line;
        kp.held = active_held();
        for (const Open& o : opens) {
          if (o.active && o.write) {
            kp.open_write_file = true;
            kp.open_line = o.line;
            break;
          }
        }
        facts.killpoints.push_back(std::move(kp));
        break;
      }
      case EventKind::Call: {
        // Guard-variable lock management on unique_lock objects.
        if (!ev.receiver.empty() && ev.receiver.find('.') == std::string::npos) {
          bool handled = false;
          for (HeldLock& h : held) {
            if (h.guard_var.empty() || h.guard_var != ev.receiver) continue;
            if (ev.callee == "unlock") {
              h.active = false;
              handled = true;
            } else if (ev.callee == "lock") {
              if (!h.active) {
                facts.acquires.insert(h.mutex);
                add_edges_into(h.mutex, ev.line);
                h.active = true;
              }
              handled = true;
            } else if (ev.callee == "try_lock") {
              h.active = true;  // held if it succeeds; never blocks
              handled = true;
            }
          }
          if (handled) break;
        }
        CallSite call;
        call.line = ev.line;
        call.targets = index.resolve_call(fn, ev);
        call.held = active_held();
        if (ev.callee == "atomic_write_file") {
          facts.writes.push_back(
              WriteSite{"util::atomic_write_file call", ev.line, call.held});
        }
        const std::string desc =
            classify_blocking_call(index, ev, call.targets);
        if (!desc.empty()) {
          BlockingSite b;
          b.desc = desc;
          b.line = ev.line;
          b.held = call.held;
          facts.blocking.push_back(std::move(b));
        }
        facts.calls.push_back(std::move(call));
        break;
      }
      case EventKind::RngLocal:
        break;  // handled by the rng rule's own walk
    }
  }
  return facts;
}

std::string held_names(const std::vector<HeldLock>& held) {
  std::string out;
  for (const HeldLock& h : held) {
    if (!out.empty()) out += ", ";
    out += '\'' + h.mutex + '\'';
  }
  return out;
}

// ---------------------------------------------------------------------------
// lock-graph
// ---------------------------------------------------------------------------

void rule_lock_graph(const ProjectIndex& index,
                     const std::vector<FnFacts>& facts, FlowReporter& rep) {
  // Transitive blocking acquisitions per function.
  std::vector<std::set<std::string>> acq(index.functions.size());
  for (std::size_t i = 0; i < facts.size(); ++i) acq[i] = facts[i].acquires;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < facts.size(); ++i) {
      for (const CallSite& call : facts[i].calls) {
        for (std::size_t tgt : call.targets) {
          for (const std::string& m : acq[tgt]) {
            if (acq[i].insert(m).second) changed = true;
          }
        }
      }
    }
  }

  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    for (const auto& [key, edge] : facts[i].edges) edges.emplace(key, edge);
    for (const CallSite& call : facts[i].calls) {
      if (call.held.empty()) continue;
      for (std::size_t tgt : call.targets) {
        for (const std::string& m : acq[tgt]) {
          for (const HeldLock& h : call.held) {
            edges.emplace(
                std::make_pair(h.mutex, m),
                LockEdge{index.functions[i].file, call.line,
                         "via call to " + index.functions[tgt].qual});
          }
        }
      }
    }
  }

  // Adjacency + cycle search. The graph is tiny (a handful of mutexes), so
  // a DFS from every node looking for a path back to it is plenty; each
  // cycle is canonicalized by its smallest rotation for dedup.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : edges) adj[key.first].push_back(key.second);
  std::set<std::string> seen_cycles;
  for (const auto& [start, _] : adj) {
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    std::vector<std::string> cycle;
    const std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) {
          const auto it = adj.find(node);
          if (it == adj.end()) return false;
          for (const std::string& next : it->second) {
            if (next == start) {
              cycle = path;
              return true;
            }
            if (on_path.count(next) != 0) continue;
            path.push_back(next);
            on_path.insert(next);
            if (dfs(next)) return true;
            on_path.erase(next);
            path.pop_back();
          }
          return false;
        };
    if (!dfs(start) || cycle.empty()) continue;
    // Canonical rotation: start at the lexicographically smallest node.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string key;
    for (const std::string& n : cycle) key += n + "|";
    if (!seen_cycles.insert(key).second) continue;

    std::string msg;
    if (cycle.size() == 1) {
      msg = "mutex '" + cycle[0] +
            "' acquired while already held (self-deadlock)";
    } else {
      msg = "lock-order cycle: ";
      for (const std::string& n : cycle) msg += n + " -> ";
      msg += cycle[0];
    }
    const LockEdge* first_edge = nullptr;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      const std::string& from = cycle[k];
      const std::string& to = cycle[(k + 1) % cycle.size()];
      const auto it = edges.find(std::make_pair(from, to));
      if (it == edges.end()) continue;
      if (first_edge == nullptr) first_edge = &it->second;
      msg += "; " + from + "->" + to + " at " + it->second.file + ":" +
             std::to_string(it->second.line);
      if (!it->second.via.empty()) msg += " (" + it->second.via + ")";
    }
    if (first_edge == nullptr) continue;
    rep.report("lock-graph", first_edge->file, first_edge->line,
               std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

void rule_blocking_under_lock(const ProjectIndex& index,
                              const std::vector<FnFacts>& facts,
                              FlowReporter& rep) {
  // Transitive witness: the first blocking primitive reachable from each
  // function, with the callee link for chain reconstruction.
  struct Witness {
    std::string desc;
    std::string file;
    std::size_t line = 0;
    std::size_t via = npos;  // function index the chain continues through
  };
  std::vector<std::optional<Witness>> blk(index.functions.size());
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (!facts[i].blocking.empty()) {
      const BlockingSite& b = facts[i].blocking.front();
      blk[i] = Witness{b.desc, index.functions[i].file, b.line, npos};
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < facts.size(); ++i) {
      if (blk[i].has_value()) continue;
      for (const CallSite& call : facts[i].calls) {
        for (std::size_t tgt : call.targets) {
          if (!blk[tgt].has_value()) continue;
          blk[i] = Witness{blk[tgt]->desc, index.functions[i].file, call.line,
                           tgt};
          changed = true;
          break;
        }
        if (blk[i].has_value()) break;
      }
    }
  }
  const auto chain = [&](std::size_t tgt) {
    std::string out = index.functions[tgt].qual;
    std::size_t cur = tgt;
    for (int depth = 0; depth < 4 && blk[cur].has_value(); ++depth) {
      const std::size_t via = blk[cur]->via;
      if (via == npos) break;
      out += " -> " + index.functions[via].qual;
      cur = via;
    }
    return out;
  };

  for (std::size_t i = 0; i < facts.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    if (!in_src(fn.file)) continue;
    for (const BlockingSite& b : facts[i].blocking) {
      if (b.held.empty()) continue;
      rep.report("blocking-under-lock", fn.file, b.line,
                 b.desc + " while holding " + held_names(b.held));
    }
    for (const CallSite& call : facts[i].calls) {
      if (call.held.empty()) continue;
      for (std::size_t tgt : call.targets) {
        if (!blk[tgt].has_value()) continue;
        rep.report("blocking-under-lock", fn.file, call.line,
                   "call to " + chain(tgt) + " reaches " + blk[tgt]->desc +
                       " (" + blk[tgt]->file + ":" +
                       std::to_string(blk[tgt]->line) + ") while holding " +
                       held_names(call.held));
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// rng-stream-discipline
// ---------------------------------------------------------------------------

void rule_rng_stream(const ProjectIndex& index,
                     const std::vector<FnFacts>& /*facts*/,
                     FlowReporter& rep) {
  // Draw methods that are unambiguously util::Rng's.
  static const std::set<std::string> kStrongDraws = {
      "next_u64", "uniform_int",   "bernoulli",
      "fork",     "shuffle",       "sample_without_replacement",
      "bootstrap_indices", "weighted_index", "lognormal",
  };
  // Common names that only count on a receiver known to be Rng-typed.
  static const std::set<std::string> kWeakDraws = {"uniform", "normal",
                                                   "index"};

  enum class Status { Sanctioned, Known };  // Known = Rng, no annotation

  const auto field_status =
      [&](const FunctionInfo& fn,
          const std::string& name) -> std::optional<Status> {
    // Prefer the owner class; otherwise any class with an Rng field of that
    // name (a chained receiver like `session.rng_` lands here).
    const Field* found = nullptr;
    if (!fn.class_name.empty()) {
      for (const ClassInfo& c : index.classes) {
        if (c.name != fn.class_name) continue;
        const Field* f = c.find_field(name);
        if (f != nullptr && f->is_rng) found = f;
      }
    }
    if (found == nullptr) {
      for (const ClassInfo& c : index.classes) {
        const Field* f = c.find_field(name);
        if (f != nullptr && f->is_rng) {
          found = f;
          if (!f->rng_stream.empty()) break;
        }
      }
    }
    if (found == nullptr) return std::nullopt;
    return found->rng_stream.empty() ? Status::Known : Status::Sanctioned;
  };

  for (const FunctionInfo& fn : index.functions) {
    if (!in_src(fn.file) || starts_with(fn.file, "src/util/rng.")) continue;
    std::map<std::string, Status> locals;
    for (const Param& p : fn.params) {
      if (!p.is_rng || p.name.empty()) continue;
      locals[p.name] =
          p.rng_stream.empty() ? Status::Known : Status::Sanctioned;
    }
    const auto resolve =
        [&](const std::string& chain) -> std::optional<Status> {
      std::string last = chain;
      const std::size_t dot = last.find_last_of('.');
      if (dot != std::string::npos) last = last.substr(dot + 1);
      if (last.empty()) return std::nullopt;
      const auto it = locals.find(last);
      if (it != locals.end()) return it->second;
      return field_status(fn, last);
    };

    for (const Event& ev : fn.events) {
      if (ev.kind == EventKind::RngLocal) {
        if (!ev.rng_stream.empty()) {
          locals[ev.rng_name] = Status::Sanctioned;
        } else if (ev.rng_init == RngInit::Fork ||
                   ev.rng_init == RngInit::Copy) {
          const auto src = resolve(ev.rng_source);
          locals[ev.rng_name] =
              src.value_or(Status::Known) == Status::Sanctioned
                  ? Status::Sanctioned
                  : Status::Known;
        } else {
          locals[ev.rng_name] = Status::Known;
        }
        continue;
      }
      if (ev.kind != EventKind::Call || ev.receiver.empty()) continue;
      const bool strong = kStrongDraws.count(ev.callee) != 0;
      const bool weak = kWeakDraws.count(ev.callee) != 0;
      if (!strong && !weak) continue;
      const auto st = resolve(ev.receiver);
      if (!st.has_value()) {
        if (strong) {
          rep.report("rng-stream-discipline", fn.file, ev.line,
                     "Rng draw '" + ev.receiver + "." + ev.callee +
                         "()' does not resolve to a PWU_RNG_STREAM-annotated "
                         "member or parameter");
        }
        continue;
      }
      if (*st == Status::Known) {
        rep.report("rng-stream-discipline", fn.file, ev.line,
                   "Rng draw '" + ev.receiver + "." + ev.callee +
                       "()' uses a stream with no PWU_RNG_STREAM(name) "
                       "annotation");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// killpoint-safety
// ---------------------------------------------------------------------------

void rule_killpoint_safety(const ProjectIndex& index,
                           const std::vector<FnFacts>& facts,
                           FlowReporter& rep) {
  for (std::size_t i = 0; i < facts.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    if (!in_src(fn.file) && !starts_with(fn.file, "tools/")) continue;
    const bool fs_atomic = starts_with(fn.file, "src/util/fs_atomic.");
    for (const KillpointSite& kp : facts[i].killpoints) {
      if (!kp.held.empty()) {
        rep.report("killpoint-safety", fn.file, kp.line,
                   "killpoint fires while holding " + held_names(kp.held) +
                       "; a kill here dies owning the lock, so the chaos "
                       "resume proof cannot replay it");
      }
      if (kp.open_write_file && !fs_atomic) {
        rep.report("killpoint-safety", fn.file, kp.line,
                   "killpoint fires with a write-mode stream (opened at "
                   "line " +
                       std::to_string(kp.open_line) +
                       ") still in scope; a kill here leaves a torn file "
                       "outside the atomic-writer protocol");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// replicate-write-discipline
// ---------------------------------------------------------------------------

bool on_replication_path(const FunctionInfo& fn) {
  std::string qual = fn.qual;
  std::transform(qual.begin(), qual.end(), qual.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return qual.find("replicat") != std::string::npos ||
         qual.find("import_commit") != std::string::npos ||
         qual.find("promote") != std::string::npos;
}

void rule_replicate_write(const ProjectIndex& index,
                          const std::vector<FnFacts>& facts,
                          FlowReporter& rep) {
  for (std::size_t i = 0; i < facts.size(); ++i) {
    const FunctionInfo& fn = index.functions[i];
    if (!in_src(fn.file) || !on_replication_path(fn)) continue;
    for (const WriteSite& w : facts[i].writes) {
      const bool disciplined =
          std::any_of(w.held.begin(), w.held.end(), [](const HeldLock& h) {
            return h.mutex.find("ckpt_write_mutex") != std::string::npos;
          });
      if (disciplined) continue;
      rep.report(
          "replicate-write-discipline", fn.file, w.line,
          w.desc + " in replication-path function '" + fn.qual +
              "' outside the checkpoint-write discipline (" +
              (w.held.empty() ? "no lock held"
                              : "holding " + held_names(w.held)) +
              ", no 'ckpt_write_mutex'); replicated records race the "
              "primary's checkpoint writers for the same image files");
    }
  }
}

// ---------------------------------------------------------------------------
// framed-write-discipline
// ---------------------------------------------------------------------------

bool in_framing_layer(const FunctionInfo& fn) {
  std::string qual = fn.qual;
  std::transform(qual.begin(), qual.end(), qual.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return qual.find("frame") != std::string::npos;
}

void rule_framed_write(const ProjectIndex& index,
                       const std::vector<FnFacts>& /*facts*/,
                       FlowReporter& rep) {
  for (const FunctionInfo& fn : index.functions) {
    if (!in_src(fn.file)) continue;
    if (!fn.class_name.ends_with("Transport")) continue;
    if (in_framing_layer(fn)) continue;
    for (const Event& ev : fn.events) {
      if (ev.kind != EventKind::Call || ev.callee != "write") continue;
      if (!ev.receiver.empty()) continue;  // `os.write(...)` is a stream
      if (!ev.qual.empty() && ev.qual != "::") continue;  // Foo::write helper
      rep.report("framed-write-discipline", fn.file, ev.line,
                 "raw fd write() in transport function '" + fn.qual +
                     "' bypasses the framing layer; route wire bytes through "
                     "the framing writer so the length prefix, the CRC, and "
                     "the short-write/EINTR loop stay in one place");
    }
  }
}

}  // namespace

void run_flow_rules(const std::vector<SourceFile>& files,
                    const std::vector<Directives>& directives,
                    const ProjectIndex& index,
                    const std::function<bool(const char*)>& rule_on,
                    std::vector<Finding>& findings, std::size_t& suppressed) {
  FlowReporter rep(files, directives, findings, suppressed);
  std::vector<FnFacts> facts;
  facts.reserve(index.functions.size());
  for (const FunctionInfo& fn : index.functions) {
    facts.push_back(simulate(index, fn));
  }
  if (rule_on("lock-graph")) rule_lock_graph(index, facts, rep);
  if (rule_on("blocking-under-lock")) {
    rule_blocking_under_lock(index, facts, rep);
  }
  if (rule_on("rng-stream-discipline")) rule_rng_stream(index, facts, rep);
  if (rule_on("killpoint-safety")) rule_killpoint_safety(index, facts, rep);
  if (rule_on("replicate-write-discipline")) {
    rule_replicate_write(index, facts, rep);
  }
  if (rule_on("framed-write-discipline")) {
    rule_framed_write(index, facts, rep);
  }
}

}  // namespace pwu::lint
