#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "index.hpp"
#include "rules_flow.hpp"
#include "tokenizer.hpp"

namespace pwu::lint {

namespace fs = std::filesystem;

namespace {

/// Finds `token` in `line` with identifier boundaries on both sides. The
/// token itself may contain non-identifier characters (e.g. "operator new");
/// boundaries are only enforced against identifier characters adjacent to
/// the match. Used by the rules that are inherently line-shaped (scope
/// heuristics, preprocessor scans); statement-shaped rules match on the
/// token stream instead so multi-line statements cannot hide.
bool has_token(const std::string& line, const std::string& token,
               bool require_call = false) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t after = pos + token.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) {
      if (!require_call) return true;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (after < line.size() && line[after] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

bool path_in(const std::string& rel, const char* prefix) {
  return starts_with(rel, prefix);
}

bool is_header(const std::string& rel) {
  return rel.ends_with(".hpp") || rel.ends_with(".h");
}

class Context {
 public:
  Context(const SourceFile& file, const Directives& directives,
          std::vector<Finding>& findings, std::size_t& suppressed)
      : file_(file),
        directives_(directives),
        findings_(findings),
        suppressed_(suppressed) {}

  /// Records a finding unless an allow-comment covers it.
  void report(const char* rule, std::size_t line, std::string message) {
    if (directives_.allowed_file.count(rule) != 0) {
      ++suppressed_;
      return;
    }
    const auto it = directives_.allowed.find(line);
    if (it != directives_.allowed.end() && it->second.count(rule) != 0) {
      ++suppressed_;
      return;
    }
    Finding f;
    f.rule = rule;
    f.file = file_.rel_path;
    f.line = line;
    f.message = std::move(message);
    f.excerpt = line >= 1 && line <= file_.raw.size()
                    ? trim(file_.raw[line - 1])
                    : std::string();
    findings_.push_back(std::move(f));
  }

  const SourceFile& file() const { return file_; }
  const Directives& directives() const { return directives_; }

 private:
  const SourceFile& file_;
  const Directives& directives_;
  std::vector<Finding>& findings_;
  std::size_t& suppressed_;
};

// ---------------------------------------------------------------------------
// Token-stream rules (statement-shaped: a statement split across lines is
// still one token sequence, so `std::` + newline + `rand()` cannot hide)
// ---------------------------------------------------------------------------

struct SeqSpec {
  std::vector<const char*> seq;  // consecutive token texts
  bool require_call = false;     // next token after the match must be '('
};

std::string spec_label(const SeqSpec& spec) {
  std::string out;
  for (const char* t : spec.seq) out += t;
  return out;
}

/// Scans the token stream for any of `specs`; reports at most one finding
/// per source line per rule (at the line of the match's first token).
void run_token_rule(Context& ctx, const std::vector<Token>& tokens,
                    const char* rule, const std::vector<SeqSpec>& specs,
                    const char* prefix, const char* suffix) {
  std::set<std::size_t> reported;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (const SeqSpec& spec : specs) {
      std::size_t k = i;
      bool ok = true;
      for (const char* want : spec.seq) {
        if (k >= tokens.size() || tokens[k].text != want) {
          ok = false;
          break;
        }
        ++k;
      }
      if (!ok) continue;
      if (spec.require_call &&
          (k >= tokens.size() || tokens[k].text != "(")) {
        continue;
      }
      if (reported.insert(tokens[i].line).second) {
        ctx.report(rule, tokens[i].line,
                   std::string(prefix) + spec_label(spec) + suffix);
      }
      break;
    }
  }
}

// ---- no-raw-rand -----------------------------------------------------------

void rule_no_raw_rand(Context& ctx, const std::vector<Token>& tokens) {
  static const std::vector<SeqSpec> kSpecs = {
      {{"std", "::", "rand"}},
      {{"srand"}},
      {{"rand"}, true},
      {{"random_device"}},
      {{"mt19937"}},
      {{"mt19937_64"}},
      {{"minstd_rand"}},
      {{"minstd_rand0"}},
      {{"default_random_engine"}},
      {{"ranlux24"}},
      {{"ranlux48"}},
      {{"knuth_b"}},
      {{"random_shuffle"}},
  };
  // util/rng is the one sanctioned home of raw generator machinery.
  if (path_in(ctx.file().rel_path, "src/util/rng.")) return;
  run_token_rule(ctx, tokens, "no-raw-rand", kSpecs, "raw RNG '",
                 "' outside util/rng breaks seed-threaded determinism");
}

// ---- no-wallclock ----------------------------------------------------------

void rule_no_wallclock(Context& ctx, const std::vector<Token>& tokens) {
  static const std::vector<SeqSpec> kSpecs = {
      {{"system_clock"}},  {{"steady_clock"}}, {{"high_resolution_clock"}},
      {{"gettimeofday"}},  {{"clock_gettime"}}, {{"time"}, true},
      {{"clock"}, true},   {{"localtime"}},     {{"gmtime"}},
  };
  const std::string& rel = ctx.file().rel_path;
  const bool scoped = path_in(rel, "src/core/") || path_in(rel, "src/rf/") ||
                      path_in(rel, "src/service/");
  if (!scoped) return;
  run_token_rule(ctx, tokens, "no-wallclock", kSpecs, "wall-clock read '",
                 "' in checkpointable code breaks bit-identical resume");
}

// ---- no-cout-logging -------------------------------------------------------

void rule_no_cout_logging(Context& ctx, const std::vector<Token>& tokens) {
  static const std::vector<SeqSpec> kSpecs = {
      {{"std", "::", "cout"}}, {{"std", "::", "cerr"}},
      {{"printf"}, true},      {{"fprintf"}, true},
      {{"puts"}, true},
  };
  const std::string& rel = ctx.file().rel_path;
  if (!path_in(rel, "src/")) return;  // tools/bench/tests own their stdout
  if (path_in(rel, "src/util/logging.")) return;  // the sanctioned sink
  run_token_rule(ctx, tokens, "no-cout-logging", kSpecs,
                 "direct console output '",
                 "' in library code; route through util/logging");
}

// ---- no-unchecked-simd -----------------------------------------------------

void rule_no_unchecked_simd(Context& ctx) {
  static constexpr const char* kHeaders[] = {
      "immintrin.h", "emmintrin.h", "xmmintrin.h", "pmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "wmmintrin.h",
      "x86intrin.h", "arm_neon.h",
  };
  const std::string& rel = ctx.file().rel_path;
  if (!path_in(rel, "src/")) return;  // bench/tools may probe freely
  // simd_eval* is the sanctioned dispatch layer: every intrinsic there sits
  // behind a build-time PWU_SIMD_HAS_* gate and a runtime cpuid check.
  if (path_in(rel, "src/rf/simd_eval")) return;
  for (std::size_t li = 0; li < ctx.file().code.size(); ++li) {
    const std::string line = trim(ctx.file().code[li]);
    if (!starts_with(line, "#") ||
        line.find("include") == std::string::npos) {
      continue;
    }
    for (const char* header : kHeaders) {
      if (line.find(header) != std::string::npos) {
        ctx.report("no-unchecked-simd", li + 1,
                   std::string("raw SIMD intrinsics header '") + header +
                       "' outside src/rf/simd_eval*; go through the "
                       "dispatched kernels so non-SIMD hosts stay on the "
                       "checked path");
        break;
      }
    }
  }
}

// ---- header-hygiene --------------------------------------------------------

void rule_header_hygiene(Context& ctx, const std::vector<Token>& tokens) {
  if (!is_header(ctx.file().rel_path)) return;
  bool pragma_once = false;
  for (const auto& line : ctx.file().code) {
    if (starts_with(trim(line), "#pragma once")) {
      pragma_once = true;
      break;
    }
  }
  if (!pragma_once) {
    ctx.report("header-hygiene", 1, "header is missing '#pragma once'");
  }
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "using" && tokens[i + 1].text == "namespace") {
      ctx.report("header-hygiene", tokens[i].line,
                 "'using namespace' in a header pollutes every includer");
    }
  }
}

// ---- no-raw-new ------------------------------------------------------------

void rule_no_raw_new(Context& ctx, const std::vector<Token>& tokens) {
  std::set<std::size_t> reported_new;
  std::set<std::size_t> reported_delete;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& text = tokens[i].text;
    const std::string prev = i > 0 ? tokens[i - 1].text : std::string();
    if (text == "new" && prev != "operator") {
      if (reported_new.insert(tokens[i].line).second) {
        ctx.report("no-raw-new", tokens[i].line,
                   "owning 'new'; use make_unique/make_shared or a container");
      }
    } else if (text == "delete" && prev != "operator" && prev != "=") {
      // "= delete" (deleted special member) is the RAII-friendly use.
      if (reported_delete.insert(tokens[i].line).second) {
        ctx.report("no-raw-new", tokens[i].line,
                   "owning 'delete'; ownership belongs in a RAII type");
      }
    }
  }
}

// ---- atomic-checkpoint -----------------------------------------------------

/// Persistence discipline: code that writes checkpoints or other
/// must-not-be-torn files (src/service, src/core, src/rf, src/sim, tools)
/// must not open a final path with std::ofstream — a crash mid-write leaves
/// a torn file with no fallback. util::atomic_write_file (tmp + CRC footer
/// + fsync + rename) is the one sanctioned final-path writer.
void rule_atomic_checkpoint(Context& ctx) {
  const std::string& rel = ctx.file().rel_path;
  const bool scoped = path_in(rel, "src/service/") ||
                      path_in(rel, "src/core/") || path_in(rel, "src/rf/") ||
                      path_in(rel, "src/sim/") || path_in(rel, "tools/");
  if (!scoped) return;
  for (std::size_t li = 0; li < ctx.file().code.size(); ++li) {
    if (has_token(ctx.file().code[li], "ofstream")) {
      ctx.report("atomic-checkpoint", li + 1,
                 "direct std::ofstream in persistence code; write final "
                 "paths through util::atomic_write_file");
    }
  }
}

// ---- no-unbounded-queue ----------------------------------------------------

/// Backpressure discipline in the serving layer: a std::deque / std::queue
/// member in src/service/ is an unbounded buffer unless a capacity check is
/// visible next to it. Heuristic: the declaration or one of the three lines
/// on either side must mention a bound (max / cap / limit / bound,
/// case-insensitive; comments count — the point is that the cap is
/// discoverable at the declaration, wherever it is enforced). Lines carrying
/// pwu-lint directives are excluded from that scan so an allow-comment for
/// this rule (whose own name contains "bound") cannot satisfy it.
void rule_no_unbounded_queue(Context& ctx) {
  const std::string& rel = ctx.file().rel_path;
  if (!path_in(rel, "src/service/")) return;
  static constexpr const char* kQueueTokens[] = {"std::deque", "std::queue"};
  static constexpr const char* kBoundWords[] = {"max", "cap", "limit",
                                                "bound"};
  const auto bounded_nearby = [&](std::size_t li) {
    const std::size_t begin = li >= 3 ? li - 3 : 0;
    const std::size_t end = std::min(li + 3, ctx.file().raw.size() - 1);
    for (std::size_t i = begin; i <= end; ++i) {
      if (ctx.directives().directive_lines.count(i + 1) != 0) continue;
      std::string low = ctx.file().raw[i];
      std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      for (const char* word : kBoundWords) {
        if (low.find(word) != std::string::npos) return true;
      }
    }
    return false;
  };
  for (std::size_t li = 0; li < ctx.file().code.size(); ++li) {
    for (const char* token : kQueueTokens) {
      if (has_token(ctx.file().code[li], token) && !bounded_nearby(li)) {
        ctx.report("no-unbounded-queue", li + 1,
                   std::string("'") + token +
                       "' in service code with no capacity check in sight "
                       "invites unbounded buffering under overload");
        break;
      }
    }
  }
}

// ---- no-unlocked-mutable ---------------------------------------------------

/// Heuristic lock-discipline check over guarded-by annotated fields.
///
/// A brace-scope tracker classifies each opened scope as function-like (its
/// introducer contains a parameter list and no class/struct/enum/namespace
/// keyword). Acquiring a lock (lock_guard / unique_lock / scoped_lock /
/// shared_lock) marks the current scope; a guarded field mentioned inside a
/// function-like scope with no lock in its scope chain is a finding.
/// Annotations are shared across same-stem files, so a field declared in
/// foo.hpp is checked in foo.cpp too.
void rule_no_unlocked_mutable(Context& ctx,
                              const std::vector<std::string>& guarded) {
  if (guarded.empty()) return;
  static constexpr const char* kLockTokens[] = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};

  struct Scope {
    bool function = false;
    bool lock_held = false;
  };
  std::vector<Scope> stack;
  std::string introducer;

  for (std::size_t li = 0; li < ctx.file().code.size(); ++li) {
    const std::string& line = ctx.file().code[li];

    // Lock acquisitions anywhere on the line cover the line itself and the
    // remainder of the current scope.
    bool locks_here = false;
    for (const char* t : kLockTokens) {
      if (has_token(line, t)) {
        locks_here = true;
        break;
      }
    }

    for (char c : line) {
      if (c == '{') {
        Scope scope;
        scope.lock_held = !stack.empty() && stack.back().lock_held;
        const bool has_params = introducer.find('(') != std::string::npos &&
                                introducer.find(')') != std::string::npos;
        const bool type_scope = has_token(introducer, "class") ||
                                has_token(introducer, "struct") ||
                                has_token(introducer, "union") ||
                                has_token(introducer, "enum") ||
                                has_token(introducer, "namespace");
        scope.function =
            (has_params && !type_scope) ||
            (!stack.empty() && stack.back().function);
        stack.push_back(scope);
        introducer.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        introducer.clear();
      } else if (c == ';') {
        introducer.clear();
      } else {
        introducer += c;
      }
    }
    if (locks_here && !stack.empty()) stack.back().lock_held = true;

    if (ctx.directives().directive_lines.count(li + 1) != 0) continue;
    const bool in_function = !stack.empty() && stack.back().function;
    const bool locked = locks_here ||
                        std::any_of(stack.begin(), stack.end(),
                                    [](const Scope& s) { return s.lock_held; });
    if (!in_function || locked) continue;
    for (const auto& field : guarded) {
      if (has_token(line, field)) {
        ctx.report("no-unlocked-mutable", li + 1,
                   "guarded field '" + field +
                       "' accessed without an in-scope lock");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Walking + driving
// ---------------------------------------------------------------------------

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool skip_dir(const std::string& name) {
  return name == "data" || starts_with(name, "build") ||
         starts_with(name, ".");
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"no-raw-rand",
       "no std::rand/random_device/mt19937/... outside src/util/rng"},
      {"no-wallclock",
       "no wall-clock reads in src/core, src/rf, src/service"},
      {"no-cout-logging",
       "no direct console output in src/ outside util/logging"},
      {"header-hygiene", "#pragma once required; no 'using namespace' in headers"},
      {"no-raw-new", "no owning new/delete outside RAII types"},
      {"atomic-checkpoint",
       "persistence code writes final paths via util::atomic_write_file, "
       "never a direct std::ofstream"},
      {"no-unbounded-queue",
       "std::deque/std::queue in src/service needs an adjacent capacity "
       "check"},
      {"no-unlocked-mutable",
       "guarded-by annotated fields only touched under a lock"},
      {"no-unchecked-simd",
       "raw SIMD intrinsics headers only inside the src/rf/simd_eval* "
       "dispatch layer"},
      {"lock-graph",
       "no cycles in the whole-project mutex acquisition-order graph "
       "(including re-acquiring a held mutex through a call chain)"},
      {"blocking-under-lock",
       "no filesystem / Transport / checkpoint-write / parallel_for work "
       "reachable while a mutex is held"},
      {"rng-stream-discipline",
       "every Rng draw resolves to a PWU_RNG_STREAM-annotated member or "
       "parameter (or a fork/copy of one)"},
      {"killpoint-safety",
       "no killpoint under a held lock or with an open write-mode stream "
       "in scope"},
      {"replicate-write-discipline",
       "replication-path functions (replicate / promote / import_commit) "
       "only write checkpoint images under a ckpt_write_mutex"},
      {"framed-write-discipline",
       "*Transport methods only touch the wire through the framing layer; "
       "raw fd write() outside *frame* functions is flagged"},
  };
  return kRules;
}

std::size_t Report::active_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (!f.baselined) ++n;
  }
  return n;
}

std::string baseline_key(const Finding& finding) {
  std::ostringstream os;
  os << finding.rule << '\t' << finding.file << '\t' << std::hex
     << fnv1a(finding.excerpt);
  return os.str();
}

void write_baseline(std::ostream& os, const Report& report) {
  os << "# pwu_lint baseline — grandfathered findings, one per line:\n"
     << "# <rule>\\t<file>\\t<fnv1a of the trimmed source line>\n"
     << "# Canonically sorted; regenerate with pwu_lint --update-baseline.\n";
  std::set<std::string> keys;  // sorted + deduplicated
  for (const auto& f : report.findings) keys.insert(baseline_key(f));
  for (const auto& key : keys) os << key << '\n';
}

Report run(const std::string& root, const Options& options) {
  const fs::path root_path(root);
  if (!fs::is_directory(root_path)) {
    throw std::runtime_error("pwu_lint: root is not a directory: " + root);
  }
  std::set<std::string> enabled;
  for (const auto& name : options.rules) {
    const bool known =
        std::any_of(rule_catalog().begin(), rule_catalog().end(),
                    [&](const RuleInfo& r) { return name == r.name; });
    if (!known) throw std::runtime_error("pwu_lint: unknown rule: " + name);
    enabled.insert(name);
  }
  const auto rule_on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) != 0;
  };

  // Collect files (sorted for deterministic reports).
  std::vector<fs::path> paths;
  for (const auto& subdir : options.subdirs) {
    const fs::path base = root_path / subdir;
    if (!fs::is_directory(base)) continue;
    auto it = fs::recursive_directory_iterator(base);
    for (const auto& entry : it) {
      if (entry.is_directory() && skip_dir(entry.path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() && scannable(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  std::vector<Directives> directives;
  std::vector<std::vector<Token>> token_streams;
  std::vector<FileIndex> file_indexes;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::string rel = fs::relative(path, root_path).generic_string();
    files.push_back(load_source(path.string(), std::move(rel)));
    directives.push_back(parse_directives(files.back()));
    token_streams.push_back(tokenize(files.back()));
    file_indexes.push_back(index_file(files.back(), token_streams.back()));
  }
  const ProjectIndex index = build_project_index(std::move(file_indexes));

  // Pass 1: guarded-field annotations, shared across same-stem files so a
  // field declared in foo.hpp is enforced in foo.cpp.
  std::map<std::string, std::vector<std::string>> guarded_by_stem;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& field : directives[i].guarded_fields) {
      guarded_by_stem[file_stem(files[i].rel_path)].push_back(field);
    }
  }

  Report report;
  report.files_scanned = files.size();
  for (std::size_t i = 0; i < files.size(); ++i) {
    Context ctx(files[i], directives[i], report.findings, report.suppressed);
    const std::vector<Token>& tokens = token_streams[i];
    if (rule_on("no-raw-rand")) rule_no_raw_rand(ctx, tokens);
    if (rule_on("no-wallclock")) rule_no_wallclock(ctx, tokens);
    if (rule_on("no-cout-logging")) rule_no_cout_logging(ctx, tokens);
    if (rule_on("header-hygiene")) rule_header_hygiene(ctx, tokens);
    if (rule_on("no-raw-new")) rule_no_raw_new(ctx, tokens);
    if (rule_on("atomic-checkpoint")) rule_atomic_checkpoint(ctx);
    if (rule_on("no-unbounded-queue")) rule_no_unbounded_queue(ctx);
    if (rule_on("no-unchecked-simd")) rule_no_unchecked_simd(ctx);
    if (rule_on("no-unlocked-mutable")) {
      const auto it = guarded_by_stem.find(file_stem(files[i].rel_path));
      if (it != guarded_by_stem.end()) {
        rule_no_unlocked_mutable(ctx, it->second);
      }
    }
  }

  // Pass 2: whole-project flow rules over the symbol index.
  run_flow_rules(files, directives, index, rule_on, report.findings,
                 report.suppressed);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  // Baseline pass.
  if (!options.baseline_path.empty()) {
    std::set<std::string> baseline;
    std::ifstream is(options.baseline_path);
    std::string line;
    while (is && std::getline(is, line)) {
      line = trim(line);
      if (line.empty() || line[0] == '#') continue;
      baseline.insert(line);
    }
    for (auto& f : report.findings) {
      if (baseline.count(baseline_key(f)) != 0) {
        f.baselined = true;
        ++report.baselined;
      }
    }
  }
  return report;
}

void print_text(std::ostream& os, const Report& report) {
  for (const auto& f : report.findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
    if (f.baselined) os << " (baselined)";
    os << "\n    " << f.excerpt << '\n';
  }
  os << "pwu_lint: " << report.files_scanned << " files, "
     << report.active_count() << " finding(s), " << report.baselined
     << " baselined, " << report.suppressed << " suppressed\n";
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void print_json(std::ostream& os, const Report& report) {
  os << "{\"files_scanned\":" << report.files_scanned
     << ",\"active\":" << report.active_count()
     << ",\"baselined\":" << report.baselined
     << ",\"suppressed\":" << report.suppressed << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ',';
    os << "{\"rule\":";
    json_string(os, f.rule);
    os << ",\"file\":";
    json_string(os, f.file);
    os << ",\"line\":" << f.line << ",\"message\":";
    json_string(os, f.message);
    os << ",\"excerpt\":";
    json_string(os, f.excerpt);
    os << ",\"baselined\":" << (f.baselined ? "true" : "false") << '}';
  }
  os << "]}\n";
}

void print_sarif(std::ostream& os, const Report& report) {
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"pwu_lint\",\"rules\":[";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"id\":";
    json_string(os, catalog[i].name);
    os << ",\"shortDescription\":{\"text\":";
    json_string(os, catalog[i].description);
    os << "}}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ',';
    os << "{\"ruleId\":";
    json_string(os, f.rule);
    os << ",\"level\":" << (f.baselined ? "\"note\"" : "\"warning\"")
       << ",\"message\":{\"text\":";
    json_string(os, f.message);
    os << "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
          "\"uri\":";
    json_string(os, f.file);
    os << "},\"region\":{\"startLine\":" << f.line << "}}}]}";
  }
  os << "]}]}\n";
}

}  // namespace pwu::lint
