// pwu_lint — project-invariant static analysis.
//
// A flow-aware analyzer (no compiler front end, no external dependencies)
// that walks the project sources and enforces the invariants the
// reproduction's claims rest on: seed-threaded determinism (no raw RNG
// construction, no wall-clock reads in checkpointable code), disciplined
// output (stdout only through util/logging or in tools), header hygiene,
// RAII ownership, and lock discipline around annotated mutable state.
//
// Two layers:
//   * statement/line rules over a stripped token stream (comments and
//     literals are blanked first, so a rule token inside either never
//     fires; token matching spans lines, so `std::` + newline + `rand()`
//     cannot hide);
//   * whole-project flow rules (lock-graph, blocking-under-lock,
//     rng-stream-discipline, killpoint-safety) over a heuristic symbol
//     index — see index.hpp / rules_flow.hpp.
//
// Suppression is comment-driven:
//
//   // pwu-lint: allow(<rule>[, <rule>...])        same-line suppression
//   // pwu-lint: allow-next-line(<rule>[, ...])    next-line suppression
//   // pwu-lint: allow-file(<rule>[, ...])         whole-file suppression
//   // pwu-lint: blocking-ok(<free-text reason>)   same-line suppression of
//                                                  blocking-under-lock with
//                                                  a human justification
//   // pwu-lint: guarded-by(<mutex>)               marks the field declared
//                                                  on this line as guarded
//                                                  (see no-unlocked-mutable;
//                                                  PWU_GUARDED_BY(mutex) is
//                                                  the macro form)
//
// Grandfathered findings live in a checked-in baseline file keyed by
// (rule, file, content-hash) so they survive unrelated line-number churn;
// anything not in the baseline fails the run.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pwu::lint {

struct RuleInfo {
  const char* name;
  const char* description;
};

/// All rules, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

struct Finding {
  std::string rule;
  std::string file;  // path relative to the scan root, '/'-separated
  std::size_t line = 0;  // 1-based
  std::string message;
  std::string excerpt;  // trimmed original source line
  bool baselined = false;
};

struct Options {
  /// Subdirectories of the root to walk (directories named "data", hidden
  /// directories, and build trees are always skipped).
  std::vector<std::string> subdirs = {"src", "tools", "bench", "tests"};
  /// Restrict to these rule names; empty = every rule.
  std::vector<std::string> rules;
  /// Baseline file path ("" = no baseline). Missing files are treated as an
  /// empty baseline, so a clean repo needs no baseline at all.
  std::string baseline_path;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  // findings silenced by allow-comments
  /// Number of findings flagged `baselined` (present in `findings` for
  /// visibility but not counted as failures).
  std::size_t baselined = 0;

  /// Findings that fail the run (not baselined).
  std::size_t active_count() const;
};

/// Scans `root` per `options`. Throws std::runtime_error when the root or a
/// requested rule does not exist.
Report run(const std::string& root, const Options& options);

/// Stable baseline key for a finding: rule, path, and an FNV-1a hash of the
/// trimmed source line (line numbers churn; content mostly does not).
std::string baseline_key(const Finding& finding);

/// Writes every finding of `report` as a baseline file in canonical order
/// (sorted, deduplicated keys) so regeneration diffs are minimal.
void write_baseline(std::ostream& os, const Report& report);

/// Human-readable report.
void print_text(std::ostream& os, const Report& report);

/// Machine-readable report (one JSON object).
void print_json(std::ostream& os, const Report& report);

/// SARIF 2.1.0 report (baselined findings demoted to level "note").
void print_sarif(std::ostream& os, const Report& report);

}  // namespace pwu::lint
