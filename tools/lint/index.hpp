// pwu_lint symbol index — per-file and cross-file structure extracted from
// the token stream, feeding the flow-aware rules (rules_flow.cpp).
//
// This is a heuristic indexer, not a compiler front end. It recognizes the
// project's own idioms: classes/structs with member fields (mutex members,
// Rng members, PWU_GUARDED_BY / PWU_RNG_STREAM annotations), function
// definitions (free, member, out-of-line qualified, lambdas as separate
// anonymous functions), and an ordered event stream per function body:
// brace scopes, lock-guard acquisitions (lock_guard / unique_lock /
// scoped_lock / shared_lock, with try_to_lock / defer_lock flags and guard
// variable names for .unlock()/.lock() tracking), calls (with receiver
// chains and immediate qualifiers), killpoints, write-mode file opens, and
// local Rng declarations with their initializer shape. When a construct is
// ambiguous the indexer errs toward recording nothing: the flow rules must
// run clean over the real tree, so silence beats noise.

#pragma once

#include "tokenizer.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace pwu::lint {

struct Param {
  std::string name;
  std::string type;        // joined declaration tokens
  bool is_rng = false;     // type mentions `Rng`
  std::string rng_stream;  // PWU_RNG_STREAM(name) annotation, "" if none
};

struct Field {
  std::string name;
  std::string type;  // joined declaration tokens before the name
  std::size_t line = 0;
  bool is_mutex = false;   // std::mutex / shared_mutex / recursive_mutex
  bool is_rng = false;     // type mentions `Rng`
  std::string rng_stream;  // PWU_RNG_STREAM(name), "" if none
  std::string guarded_by;  // PWU_GUARDED_BY(mutex), "" if none
};

struct ClassInfo {
  std::string name;  // simple name
  std::string qual;  // nested path, e.g. "SessionManager::Entry"
  std::string file;
  std::size_t line = 0;
  std::vector<Field> fields;

  const Field* find_field(const std::string& name) const;
};

enum class EventKind : std::uint8_t {
  ScopeOpen,
  ScopeClose,
  Lock,      // guard construction
  Call,      // anything that looks like a call
  Killpoint, // util::killpoint("...")
  FileOpen,  // ofstream/fstream/fopen/::open(O_WRONLY|O_RDWR|O_CREAT|O_TRUNC)
  RngLocal,  // local util::Rng declaration
};

enum class RngInit : std::uint8_t { Default, Seeded, Fork, Copy };

struct Event {
  EventKind kind = EventKind::Call;
  std::size_t line = 0;

  // Lock
  std::vector<std::string> lock_args;  // raw mutex expressions
  std::string guard_var;               // guard object name ("" if unnamed)
  bool is_unique_lock = false;
  bool try_lock = false;    // std::try_to_lock — acquisition cannot block
  bool defer_lock = false;  // std::defer_lock — nothing held until .lock()

  // Call
  std::string callee;    // simple name
  std::string qual;      // immediate qualifier: the X in X::callee ("" else)
  std::string receiver;  // dotted receiver chain, e.g. "entry->session"

  // FileOpen
  bool write_open = false;

  // RngLocal
  std::string rng_name;
  std::string rng_source;  // receiver chain of the fork()/copy source
  std::string rng_stream;  // PWU_RNG_STREAM annotation on the declaration
  RngInit rng_init = RngInit::Default;
};

struct FunctionInfo {
  std::string name;  // simple name; lambdas: "<lambda>"
  std::string qual;  // display name, e.g. "SessionManager::tell"
  /// Names this function could be qualified by at a call site: lexical
  /// namespaces/classes plus any out-of-line qualifier chain.
  std::vector<std::string> scopes;
  std::string class_name;  // owner class simple name, "" for free functions
  std::string file;
  std::size_t line = 0;
  bool is_lambda = false;
  std::vector<Param> params;
  std::vector<Event> events;  // in token order
};

struct FileIndex {
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
};

struct ProjectIndex {
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  /// simple function name -> indices into `functions`.
  std::multimap<std::string, std::size_t> functions_by_name;
  /// simple class name -> indices into `classes`.
  std::map<std::string, std::vector<std::size_t>> classes_by_name;

  const ClassInfo* find_class(const std::string& qual_or_name) const;

  /// Candidate definitions for a call event made from `caller`: all
  /// functions with the callee's simple name, narrowed by the immediate
  /// qualifier when that eliminates anything. An over-approximation by
  /// design — type-erased or std:: calls resolve to nothing.
  std::vector<std::size_t> resolve_call(const FunctionInfo& caller,
                                        const Event& call) const;

  /// Canonical identity for a raw lock-argument expression appearing inside
  /// `fn`: "Class::member" when the last identifier of the expression names
  /// a mutex field of the owner class, a class in the same file, or a unique
  /// class project-wide; otherwise "<file-stem>::name".
  std::string canonical_mutex(const FunctionInfo& fn,
                              const std::string& raw_expr) const;
};

/// Indexes one file's token stream.
FileIndex index_file(const SourceFile& file, const std::vector<Token>& tokens);

/// Merges per-file indices and builds the lookup tables.
ProjectIndex build_project_index(std::vector<FileIndex> file_indices);

}  // namespace pwu::lint
