// pwu_lint CLI — scans the repository for project-invariant violations.
//
//   pwu_lint --root <dir> [--format text|json|sarif] [--baseline <file>]
//            [--write-baseline <file>] [--update-baseline]
//            [--rules <r1,r2,...>] [--list-rules]
//
// --json is a legacy alias for --format json. --update-baseline rewrites
// the checked-in baseline (tools/lint/pwu_lint.baseline under the root, or
// the --baseline path when given) in canonical sorted order from the
// current findings, then exits 0.
//
// Exit codes: 0 = clean (every finding baselined or none), 1 = active
// findings, 2 = usage or I/O error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: pwu_lint [--root DIR] [--format text|json|sarif]\n"
        "                [--baseline FILE] [--write-baseline FILE]\n"
        "                [--update-baseline] [--rules r1,r2,...]\n"
        "                [--list-rules]\n";
  return code;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int emit_baseline(const std::string& path, const pwu::lint::Report& report) {
  // A baseline is regenerable developer state, not a checkpoint.
  std::ofstream os(path);  // pwu-lint: allow(atomic-checkpoint)
  if (!os) {
    std::cerr << "pwu_lint: cannot write " << path << '\n';
    return 2;
  }
  pwu::lint::write_baseline(os, report);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string write_baseline_path;
  std::string format = "text";
  bool update_baseline = false;
  pwu::lint::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "pwu_lint: " << arg << " needs a value\n";
        std::exit(usage(std::cerr, 2));
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--json") {
      format = "json";
    } else if (arg == "--format") {
      format = next();
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "pwu_lint: unknown format: " << format << '\n';
        return usage(std::cerr, 2);
      }
    } else if (arg == "--baseline") {
      options.baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--rules") {
      options.rules = split_csv(next());
    } else if (arg == "--list-rules") {
      for (const auto& rule : pwu::lint::rule_catalog()) {
        std::cout << rule.name << "\n    " << rule.description << '\n';
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "pwu_lint: unknown argument: " << arg << '\n';
      return usage(std::cerr, 2);
    }
  }

  try {
    if (update_baseline) {
      const std::string path = options.baseline_path.empty()
                                   ? root + "/tools/lint/pwu_lint.baseline"
                                   : options.baseline_path;
      // Regenerate from a baseline-free run so stale keys drop out.
      pwu::lint::Options fresh = options;
      fresh.baseline_path.clear();
      const pwu::lint::Report report = pwu::lint::run(root, fresh);
      const int rc = emit_baseline(path, report);
      if (rc == 0) {
        std::cout << "pwu_lint: baseline updated: " << path << " ("
                  << report.findings.size() << " finding(s))\n";
      }
      return rc;
    }

    const pwu::lint::Report report = pwu::lint::run(root, options);
    if (!write_baseline_path.empty()) {
      const int rc = emit_baseline(write_baseline_path, report);
      if (rc != 0) return rc;
    }
    if (format == "json") {
      pwu::lint::print_json(std::cout, report);
    } else if (format == "sarif") {
      pwu::lint::print_sarif(std::cout, report);
    } else {
      pwu::lint::print_text(std::cout, report);
    }
    return report.active_count() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pwu_lint: " << e.what() << '\n';
    return 2;
  }
}
