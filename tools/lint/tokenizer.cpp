#include "tokenizer.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pwu::lint {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string file_stem(const std::string& rel) {
  const std::size_t slash = rel.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? rel : rel.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

void strip_source(SourceFile& file) {
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  State state = State::Code;
  std::string raw_delim;  // raw-string delimiter, e.g. )foo"

  file.code.resize(file.raw.size());
  file.comment.resize(file.raw.size());
  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& in = file.raw[li];
    std::string& out = file.code[li];
    std::string& com = file.comment[li];
    out.reserve(in.size());
    if (state == State::LineComment) state = State::Code;

    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::Code:
          if (c == '/' && next == '/') {
            state = State::LineComment;
            com.append(in, i + 2, std::string::npos);
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::BlockComment;
            out += ' ';
            ++i;
          } else if (c == '"') {
            // Raw string? Look back for R (possibly u8R/LR/uR/UR).
            bool raw = false;
            if (i > 0 && in[i - 1] == 'R' &&
                (i == 1 || !is_ident_char(in[i - 2]) || in[i - 2] == '8' ||
                 in[i - 2] == 'u' || in[i - 2] == 'U' || in[i - 2] == 'L')) {
              raw = true;
            }
            out += '"';
            if (raw) {
              std::size_t paren = in.find('(', i + 1);
              if (paren == std::string::npos) {
                state = State::Raw;  // malformed; swallow the rest
                raw_delim = ")\"";
                i = in.size();
              } else {
                raw_delim = ")" + in.substr(i + 1, paren - i - 1) + "\"";
                state = State::Raw;
                i = paren;
              }
            } else {
              state = State::String;
            }
          } else if (c == '\'') {
            out += '\'';
            state = State::Char;
          } else {
            out += c;
          }
          break;
        case State::LineComment:
          break;  // unreachable: handled by the line reset above
        case State::BlockComment:
          if (c == '*' && next == '/') {
            state = State::Code;
            ++i;
          } else {
            com += c;
          }
          break;
        case State::String:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out += '"';
            state = State::Code;
          }
          break;
        case State::Char:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out += '\'';
            state = State::Code;
          }
          break;
        case State::Raw: {
          const std::size_t end = in.find(raw_delim, i);
          if (end == std::string::npos) {
            i = in.size();
          } else {
            out += '"';
            i = end + raw_delim.size() - 1;
            state = State::Code;
          }
          break;
        }
      }
    }
  }
}

SourceFile load_source(const std::string& path, std::string rel) {
  SourceFile file;
  file.rel_path = std::move(rel);
  std::ifstream is(path);
  if (!is) throw std::runtime_error("pwu_lint: cannot read " + path);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(std::move(line));
  }
  strip_source(file);
  return file;
}

SourceFile source_from_string(std::string rel, const std::string& text) {
  SourceFile file;
  file.rel_path = std::move(rel);
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(std::move(line));
  }
  strip_source(file);
  return file;
}

namespace {

std::vector<std::string> parse_rule_list(const std::string& args) {
  std::vector<std::string> rules;
  std::string current;
  for (char c : args) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!current.empty()) rules.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) rules.push_back(current);
  return rules;
}

}  // namespace

std::string declared_field_name(const std::string& code_line) {
  const std::size_t semi = code_line.rfind(';');
  if (semi == std::string::npos) return {};
  std::size_t end = semi;
  while (end > 0 && !is_ident_char(code_line[end - 1])) {
    // Skip default member initializers like "= 0" backwards.
    --end;
  }
  // Walk back over a possible initializer: find the identifier immediately
  // left of '=' when one is present between it and ';'.
  const std::size_t eq = code_line.rfind('=', semi);
  if (eq != std::string::npos) end = eq;
  while (end > 0 && !is_ident_char(code_line[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(code_line[begin - 1])) --begin;
  return code_line.substr(begin, end - begin);
}

Directives parse_directives(const SourceFile& file) {
  Directives d;
  for (std::size_t li = 0; li < file.comment.size(); ++li) {
    const std::string& com = file.comment[li];
    std::size_t pos = com.find("pwu-lint:");
    if (pos == std::string::npos) continue;
    d.directive_lines.insert(li + 1);
    std::string rest = trim(com.substr(pos + 9));
    if (starts_with(rest, "blocking-ok")) {
      // Escape hatch for blocking-under-lock; the argument is a free-text
      // justification, not a rule list. On a trailing comment it covers
      // its own line; as a full-line comment it covers the next line.
      const bool full_line_comment = trim(file.code[li]).empty();
      d.allowed[li + 1 + (full_line_comment ? 1 : 0)]
          .insert("blocking-under-lock");
      continue;
    }
    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')', open == std::string::npos
                                                    ? std::string::npos
                                                    : open + 1);
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string verb = trim(rest.substr(0, open));
    const std::string args = rest.substr(open + 1, close - open - 1);
    if (verb == "allow") {
      for (auto& rule : parse_rule_list(args)) d.allowed[li + 1].insert(rule);
    } else if (verb == "allow-next-line") {
      for (auto& rule : parse_rule_list(args)) d.allowed[li + 2].insert(rule);
    } else if (verb == "allow-file") {
      for (auto& rule : parse_rule_list(args)) d.allowed_file.insert(rule);
    } else if (verb == "guarded-by") {
      const std::string field = declared_field_name(file.code[li]);
      if (!field.empty()) d.guarded_fields.push_back(field);
    }
  }
  // Macro-form annotations: `Type field PWU_GUARDED_BY(mutex);` marks the
  // declared field exactly like the comment form.
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::size_t macro = file.code[li].find("PWU_GUARDED_BY");
    if (macro == std::string::npos) continue;
    if (file.code[li].compare(macro, 15, "PWU_GUARDED_BY(") != 0) continue;
    const std::string trimmed = trim(file.code[li]);
    if (!trimmed.empty() && trimmed.front() == '#') continue;  // the #define
    const std::string field =
        declared_field_name(file.code[li].substr(0, macro) + ";");
    if (!field.empty()) d.guarded_fields.push_back(field);
  }
  return d;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  bool in_directive = false;  // spans continuation lines
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    const std::string trimmed = trim(line);
    const bool continues = !trimmed.empty() && trimmed.back() == '\\';
    if (in_directive) {
      in_directive = continues;
      continue;
    }
    if (!trimmed.empty() && trimmed.front() == '#') {
      in_directive = continues;
      continue;
    }

    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      Token tok;
      tok.line = li + 1;
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < line.size() &&
               (is_ident_char(line[j]) || line[j] == '.')) {
          ++j;
        }
        tok.kind = TokKind::Number;
        tok.text = line.substr(i, j - i);
        i = j;
      } else if (is_ident_char(c)) {
        std::size_t j = i;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        tok.kind = TokKind::Ident;
        tok.text = line.substr(i, j - i);
        i = j;
      } else if (c == '"' || c == '\'') {
        // Literals are blanked by the stripper, so the close quote is the
        // next matching character (or end of line for unterminated input).
        const std::size_t close = line.find(c, i + 1);
        tok.kind = TokKind::Literal;
        tok.text = std::string(2, c);
        i = close == std::string::npos ? line.size() : close + 1;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tok.kind = TokKind::Punct;
        tok.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tok.kind = TokKind::Punct;
        tok.text = "->";
        i += 2;
      } else {
        tok.kind = TokKind::Punct;
        tok.text = std::string(1, c);
        ++i;
      }
      tokens.push_back(std::move(tok));
    }
  }
  return tokens;
}

bool match_tokens(const std::vector<Token>& tokens, std::size_t i,
                  std::initializer_list<const char*> seq) {
  std::size_t k = i;
  for (const char* want : seq) {
    if (k >= tokens.size() || tokens[k].text != want) return false;
    ++k;
  }
  return true;
}

}  // namespace pwu::lint
