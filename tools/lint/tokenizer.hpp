// pwu_lint tokenizer — comment/literal stripping and a real C++ token
// stream on top of it.
//
// The stripper is a line-preserving state machine (// and /* */ comments,
// string/char literals including raw strings); comment text is collected per
// line so lint directives survive. The tokenizer walks the stripped code and
// produces identifier / number / literal / punctuation tokens with 1-based
// line numbers, skipping preprocessor directives (including backslash
// continuations) so macro definitions never masquerade as code. Multi-char
// punctuators are limited to the ones the index cares about ("::", "->");
// everything else is emitted one character at a time, so a template close
// `>>` is two '>' tokens and never a shift operator as far as matching is
// concerned.

#pragma once

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pwu::lint {

// ---------------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------------

inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s);

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::uint64_t fnv1a(const std::string& s);

/// "src/service/session_manager.cpp" -> "session_manager".
std::string file_stem(const std::string& rel);

// ---------------------------------------------------------------------------
// Source files
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;  // '/'-separated, relative to scan root
  std::vector<std::string> raw;      // original lines
  std::vector<std::string> code;     // comments + literals blanked out
  std::vector<std::string> comment;  // comment text seen on each line
};

/// Strips // and /* */ comments and string/char literals (including raw
/// strings), preserving line structure. Comment text is collected per line
/// so lint directives survive the stripping.
void strip_source(SourceFile& file);

/// Reads a file from disk, splits lines, strips. Throws std::runtime_error
/// when unreadable.
SourceFile load_source(const std::string& path, std::string rel);

/// Builds a SourceFile from in-memory text (tests, fixtures).
SourceFile source_from_string(std::string rel, const std::string& text);

// ---------------------------------------------------------------------------
// Lint directives (comment-driven suppression + annotations)
// ---------------------------------------------------------------------------

/// One file's parsed lint directives.
struct Directives {
  /// allowed[line] = rules suppressed on that 1-based line.
  std::map<std::size_t, std::set<std::string>> allowed;
  std::set<std::string> allowed_file;
  /// guarded-by annotations (comment form and PWU_GUARDED_BY macro form):
  /// field name declared on the annotation line.
  std::vector<std::string> guarded_fields;
  /// Lines carrying any pwu-lint directive (never flagged themselves).
  std::set<std::size_t> directive_lines;
};

/// Parses `// pwu-lint: ...` comment directives plus PWU_GUARDED_BY macro
/// annotations out of a stripped source file. `blocking-ok(reason)` is
/// recorded as a same-line allow for the blocking-under-lock rule.
Directives parse_directives(const SourceFile& file);

/// Last identifier before the final ';' of a declaration line — the field
/// name a guarded-by annotation refers to.
std::string declared_field_name(const std::string& code_line);

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  Ident,    // identifiers and keywords
  Number,   // numeric literals
  Literal,  // blanked string/char literals: "" or ''
  Punct,    // punctuation; "::" and "->" fused, all else single-char
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  std::size_t line = 0;  // 1-based
};

/// Tokenizes the stripped code of `file`. Preprocessor directive lines
/// (leading '#', plus their backslash continuations) are skipped entirely.
std::vector<Token> tokenize(const SourceFile& file);

/// True when tokens[i..] match `seq` exactly (kind-insensitive text match).
bool match_tokens(const std::vector<Token>& tokens, std::size_t i,
                  std::initializer_list<const char*> seq);

}  // namespace pwu::lint
