// pwu_router — sharded front-end for a fleet of pwu_serve workers.
//
// Speaks the same JSON-lines protocol as pwu_serve on stdin/stdout, so
// clients (pwu_client included) cannot tell it from a single server —
// except that sessions spread across N worker processes by consistent
// hashing, and a worker crash is survived: the router resumes the dead
// shard's sessions from their auto-checkpoints onto the survivors,
// bit-identically, and answers the interrupted request exactly once.
//
//   pwu_router --workers 4 --checkpoint-dir /var/lib/pwu
//   pwu_router --workers 2 --checkpoint-dir ckpt \
//       --worker-cmd './pwu_serve --max-pending-asks 8'
//
// Each worker runs `WORKER_CMD --checkpoint-dir DIR/shard-<i>
// --checkpoint-every 1` ({i} in WORKER_CMD expands to the shard index,
// e.g. to give shards distinct log files or kill schedules). Checkpointing
// every tell is what makes single-request failover loss-free, so the
// router always forces it on.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "service/transport.hpp"

namespace {

bool parse_count(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != text && *end == '\0' && out >= 0;
}

std::string replace_all(std::string text, const std::string& what,
                        const std::string& with) {
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    text.replace(pos, what.size(), with);
    pos += with.size();
  }
  return text;
}

/// Single-quote for /bin/sh -c (paths with spaces survive; embedded
/// single quotes use the '\'' idiom).
std::string shell_quote(const std::string& text) {
  std::string out = "'";
  for (const char c : text) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

int usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: pwu_router --workers N --checkpoint-dir DIR\n"
         "                  [--worker-cmd CMD]    command per worker; {i} "
         "expands to the shard index\n"
         "                                        (default: pwu_serve next "
         "to this binary)\n"
         "                  [--vnodes K]          virtual nodes per shard "
         "on the hash ring (default 128)\n"
         "                  [--timeout SEC]       per-response worker "
         "deadline (default 30; a late worker\n"
         "                                        is treated as dead and "
         "failed over)\n"
         "                  [--retries N] [--backoff MS]   overloaded-"
         "response retry policy\n"
         "                  [--retry-after-ms MS] back-off hint on "
         "redirected responses (default 100)\n"
         "                  [--no-replay]         answer redirected instead "
         "of replaying in-flight\n"
         "                                        requests after a shard "
         "death\n"
         "                  [--seed S]            jitter stream seed\n"
         "                  [--probe-every N]     probe worker health every "
         "N requests (default 0 = off)\n"
         "                  [--frame]             speak checksummed pwu1 "
         "framing to the workers\n"
         "                                        (corrupt replies are "
         "detected and resent instead\n"
         "                                        of poisoning a session)\n"
         "                  [--standby]           warm-standby replication: "
         "stream acked ops to each\n"
         "                                        session's ring successor "
         "and promote its live shadow\n"
         "                                        on primary death\n"
         "                  [--replication-lag-max N]  flush the standby "
         "outbox past N queued ops\n"
         "                                        (default 4; 0 = "
         "synchronous)\n"
         "                  [--max-replay-log N]  force a checkpoint past N "
         "acked-undurable asks\n"
         "                                        (default 64)\n"
         "Reads one JSON request per line on stdin, writes one JSON "
         "response per line on stdout.\n"
         "{\"op\":\"grow\",\"shard\":\"NAME\"} spawns one more worker (same "
         "worker-cmd, {i} = NAME),\n"
         "migrates the sessions the grown ring assigns to it, then flips "
         "ring ownership.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  long workers = 0;
  std::string worker_cmd;
  std::string checkpoint_dir;
  double timeout_seconds = 30.0;
  pwu::router::RouterOptions options;
  pwu::router::ShardClientOptions client_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long v = 0;
    if (arg == "--workers" && i + 1 < argc) {
      if (!parse_count(argv[++i], v) || v == 0) {
        std::cerr << "pwu_router: --workers expects a positive integer\n";
        return 2;
      }
      workers = v;
    } else if (arg == "--worker-cmd" && i + 1 < argc) {
      worker_cmd = argv[++i];
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--vnodes" && i + 1 < argc) {
      if (!parse_count(argv[++i], v) || v == 0) {
        std::cerr << "pwu_router: --vnodes expects a positive integer\n";
        return 2;
      }
      options.vnodes = static_cast<std::size_t>(v);
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout_seconds = std::strtod(argv[++i], nullptr);
      if (!(timeout_seconds > 0.0)) {
        std::cerr << "pwu_router: --timeout expects a positive number of "
                     "seconds\n";
        return 2;
      }
    } else if (arg == "--retries" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --retries expects a non-negative integer\n";
        return 2;
      }
      client_options.retries = static_cast<int>(v);
    } else if (arg == "--backoff" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --backoff expects a non-negative integer\n";
        return 2;
      }
      client_options.backoff_ms = static_cast<int>(v);
    } else if (arg == "--retry-after-ms" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --retry-after-ms expects a non-negative "
                     "integer\n";
        return 2;
      }
      options.retry_after_ms = v;
    } else if (arg == "--no-replay") {
      options.replay_in_flight = false;
    } else if (arg == "--seed" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --seed expects a non-negative integer\n";
        return 2;
      }
      client_options.jitter_seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--probe-every" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --probe-every expects a non-negative "
                     "integer\n";
        return 2;
      }
      options.probe_every = static_cast<std::size_t>(v);
    } else if (arg == "--frame") {
      options.frame = true;
    } else if (arg == "--standby") {
      options.standby = true;
    } else if (arg == "--replication-lag-max" && i + 1 < argc) {
      if (!parse_count(argv[++i], v)) {
        std::cerr << "pwu_router: --replication-lag-max expects a "
                     "non-negative integer (0 = synchronous)\n";
        return 2;
      }
      options.replication_lag_max = static_cast<std::size_t>(v);
    } else if (arg == "--max-replay-log" && i + 1 < argc) {
      if (!parse_count(argv[++i], v) || v == 0) {
        std::cerr << "pwu_router: --max-replay-log expects a positive "
                     "integer\n";
        return 2;
      }
      options.max_replay_log = static_cast<std::size_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "pwu_router: unrecognized argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (workers == 0 || checkpoint_dir.empty()) {
    std::cerr << "pwu_router: --workers and --checkpoint-dir are required\n";
    return usage(2);
  }
  if (worker_cmd.empty()) {
    // Default to the pwu_serve that shipped alongside this binary.
    const std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    worker_cmd = slash == std::string::npos
                     ? "pwu_serve"
                     : shell_quote(self.substr(0, slash + 1) + "pwu_serve");
  }

  try {
    std::vector<pwu::router::ShardSpec> shards;
    shards.reserve(static_cast<std::size_t>(workers));
    for (long i = 0; i < workers; ++i) {
      const std::string index = std::to_string(i);
      const std::string shard_dir = checkpoint_dir + "/shard-" + index;
      std::filesystem::create_directories(shard_dir);
      pwu::router::ShardSpec spec;
      spec.name = "shard-" + index;
      spec.checkpoint_dir = shard_dir;
      spec.transport = std::make_unique<pwu::service::PipeTransport>(
          replace_all(worker_cmd, "{i}", index) + " --checkpoint-dir " +
              shell_quote(shard_dir) + " --checkpoint-every 1",
          timeout_seconds);
      shards.push_back(std::move(spec));
    }
    pwu::router::Router router(std::move(shards), options, client_options);
    // The "grow" op spawns one more worker the same way the initial fleet
    // was built; {i} expands to the new shard's name instead of an index.
    router.set_grow_factory(
        [worker_cmd, checkpoint_dir,
         timeout_seconds](const std::string& name) {
          const std::string shard_dir = checkpoint_dir + "/" + name;
          std::filesystem::create_directories(shard_dir);
          pwu::router::ShardSpec spec;
          spec.name = name;
          spec.checkpoint_dir = shard_dir;
          spec.transport = std::make_unique<pwu::service::PipeTransport>(
              replace_all(worker_cmd, "{i}", name) + " --checkpoint-dir " +
                  shell_quote(shard_dir) + " --checkpoint-every 1",
              timeout_seconds);
          return spec;
        });
    pwu::router::run_router_loop(std::cin, std::cout, router);
  } catch (const std::exception& e) {
    std::cerr << "pwu_router: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
