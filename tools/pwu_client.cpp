// pwu_client — end-to-end ask/tell demo and equivalence check.
//
// Drives a tuning session through the JSON-lines protocol, playing the
// client role: it measures each asked configuration on the simulated
// workload with the measurement stream the server hands back, and tells
// the label. Optionally the session is checkpointed, closed, and resumed
// mid-run — exercising the crash-recovery path.
//
// Transports (src/service/transport.hpp — shared with the router tier):
//   (default)        in-process: requests dispatch straight into a
//                    SessionManager (the same handle_request pwu_serve runs)
//   --server CMD     pipe: CMD (e.g. "./pwu_serve" or "./pwu_router ...")
//                    is spawned under /bin/sh with the JSON-lines protocol
//                    on its stdin/stdout. Requests honor --timeout, and
//                    transport failures (dead server, hung response) are
//                    retried with jittered exponential backoff before
//                    giving up with exit status 3.
//   --endpoints A,B  fallback list: like --server, but a transport failure
//                    rotates to the next command in the list before
//                    retrying. Meant for equivalent front-ends (e.g.
//                    router replicas over one worker fleet) — a fresh
//                    pwu_serve would not have the session.
//   --frame          checksummed pwu1 wire framing on the pipe transports
//                    (DESIGN.md §15): a corrupt reply is detected by CRC,
//                    the stream resyncs at the next frame boundary, and
//                    the request is re-sent after a jittered backoff. The
//                    exit summary reports corrupt_replies. Mutating ops
//                    always carry client-generated idempotency keys, so
//                    re-sends are exactly-once.
//
// Structured refusals are honored, not treated as failures: an
// {"ok":false,"overloaded":true} response retries after the server's
// retry_after_ms hint on the same connection. {"ok":false,
// "redirected":true} (a router re-homing the session after a shard
// death) waits the same way but tracks its own budget: after --retries
// consecutive redirects from one endpoint the client rotates to the next
// --endpoints entry and re-resolves there — a front-end that keeps
// redirecting has a stale view of the ring, and a sibling replica over
// the same worker fleet may already route to the updated owner. The
// total redirect budget is --retries per endpoint.
//
// Afterwards the equivalent batch run (core::ActiveLearner::run, same
// seed) is executed and the two training sets are compared label for
// label. Exit status 0 = identical; 1 = diverged; 2 = usage/server error;
// 3 = server unavailable. The equivalence property is wired into ctest as
// `cli_client_e2e` (in-process), `cli_client_pipe_e2e` (pipe),
// `cli_client_router_e2e` (through pwu_router), and
// `cli_client_endpoints` (fallback rotation).
//
//   pwu_client --workload mm --strategy pwu --nmax 60 --pool 400 \
//              --seed 7 --checkpoint-at 30 [--verbose]
//   pwu_client --server ./pwu_serve --timeout 30 --retries 3

#include <cstdio>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/active_learner.hpp"
#include "core/metrics.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "space/pool.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwu;
namespace json = util::json;

struct Args {
  std::string workload = "atax";
  std::string strategy = "pwu";
  double alpha = 0.05;
  std::size_t n_init = 10;
  std::size_t n_batch = 1;
  std::size_t n_max = 60;
  std::size_t pool_size = 400;
  std::size_t test_size = 200;
  std::size_t trees = 25;
  std::size_t checkpoint_at = 0;  // 0 = no checkpoint/resume round-trip
  std::uint64_t seed = 7;
  std::vector<std::string> endpoints;  // empty = in-process transport
  double timeout = 30.0;     // per-request response timeout (seconds)
  int retries = 3;           // transport-failure retries per request
  int backoff_ms = 100;      // first retry backoff (doubles, jittered)
  bool frame = false;        // checksummed pwu1 framing on pipe transports
  bool verbose = false;
};

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--workload") args.workload = next();
    else if (arg == "--strategy") args.strategy = next();
    else if (arg == "--alpha") args.alpha = std::stod(next());
    else if (arg == "--ninit") args.n_init = std::stoul(next());
    else if (arg == "--batch") args.n_batch = std::stoul(next());
    else if (arg == "--nmax") args.n_max = std::stoul(next());
    else if (arg == "--pool") args.pool_size = std::stoul(next());
    else if (arg == "--test") args.test_size = std::stoul(next());
    else if (arg == "--trees") args.trees = std::stoul(next());
    else if (arg == "--checkpoint-at") args.checkpoint_at = std::stoul(next());
    else if (arg == "--seed") args.seed = std::stoull(next());
    else if (arg == "--server") args.endpoints = {next()};
    else if (arg == "--endpoints") args.endpoints = split_commas(next());
    else if (arg == "--timeout") args.timeout = std::stod(next());
    else if (arg == "--retries") args.retries = std::stoi(next());
    else if (arg == "--backoff") args.backoff_ms = std::stoi(next());
    else if (arg == "--frame") args.frame = true;
    else if (arg == "--verbose") args.verbose = true;
    else throw std::invalid_argument("unrecognized argument: " + arg);
  }
  if (args.timeout <= 0.0) {
    throw std::invalid_argument("--timeout must be positive");
  }
  if (args.retries < 0) throw std::invalid_argument("--retries must be >= 0");
  return args;
}

/// The client's view of the server side: one transport at a time, with the
/// rest of the --endpoints list as fallbacks a transport failure rotates
/// to. The in-process default is a single-entry pool.
class EndpointPool {
 public:
  /// In-process endpoint (no fallbacks — there is nothing to fall back to).
  EndpointPool() {
    transports_.push_back(std::make_unique<service::InProcessTransport>());
    labels_.push_back("(in-process)");
  }

  EndpointPool(const std::vector<std::string>& commands, double timeout,
               bool frame) {
    for (const std::string& command : commands) {
      std::unique_ptr<service::Transport> transport =
          std::make_unique<service::PipeTransport>(command, timeout);
      if (frame) {
        // Checksummed pwu1 framing: corruption is detected per reply and
        // surfaces as service::FrameError instead of poisoning the stream.
        transport =
            std::make_unique<service::FramedTransport>(std::move(transport));
      }
      transports_.push_back(std::move(transport));
      labels_.push_back(command);
    }
  }

  service::Transport& current() { return *transports_[index_]; }
  const std::string& label() const { return labels_[index_]; }
  std::size_t size() const { return transports_.size(); }

  /// Advances to the next endpoint (wrapping). With one endpoint this is a
  /// no-op and the retry respawns/reuses the same connection.
  void rotate() { index_ = (index_ + 1) % transports_.size(); }

 private:
  std::vector<std::unique_ptr<service::Transport>> transports_;
  std::vector<std::string> labels_;
  std::size_t index_ = 0;
};

/// One protocol round-trip with retry policy:
///   transport failure — exponential backoff from --backoff ms, doubled
///     per attempt, jittered to [0.5, 1.5)x so a fleet of clients does not
///     stampede a recovering server; then rotate to the next endpoint.
///   overloaded refusal — wait the server's retry_after_ms hint (jittered
///     the same way) and re-send on the same connection: the server is
///     alive and told us when to come back.
///   redirected refusal — wait the hint, but on its own budget: after
///     --retries consecutive redirects from one endpoint, rotate and
///     re-resolve against the next front-end (whose ring view may already
///     name the session's updated owner) instead of hammering the one
///     that keeps redirecting. Budget: --retries per endpoint overall.
///   corrupt reply (--frame) — the frame layer already resynced to the next
///     frame boundary; wait a jittered --backoff and re-send the *same*
///     request on the same connection. The idempotency key stamped below
///     makes the re-send exactly-once even when the lost reply's request
///     was applied. Counted in `corrupt_replies` for the exit summary.
///
/// Mutating requests (tell, create, resume, checkpoint, ...) that carry no
/// "idem" key yet are stamped with a client-generated one — once per
/// logical call, so every retry re-uses the same key and the server's
/// dedup window replays the original reply instead of re-executing.
json::Value call(EndpointPool& pool, const json::Value& request,
                 const Args& args, util::Rng& backoff_rng,
                 std::uint64_t& idem_counter, std::uint64_t& corrupt_replies) {
  json::Value stamped = request;
  if (stamped.is_object() &&
      service::is_mutating_op(stamped.string_or("op", "")) &&
      stamped.string_or("idem", "").empty() &&
      !stamped.string_or("session", "").empty()) {
    stamped.as_object()["idem"] =
        json::Value("cli#" + std::to_string(++idem_counter));
  }
  const std::string line = stamped.dump();
  if (args.verbose) std::cout << ">> " << line << "\n";
  for (int attempt = 0, redirects = 0, corruptions = 0;;) {
    try {
      const std::string reply = pool.current().request(line);
      json::Value response = json::parse(reply);
      if (args.verbose) std::cout << "<< " << response.dump() << "\n";
      if (!response.at("ok").as_bool()) {
        const bool overloaded = response.bool_or("overloaded", false);
        const bool redirected = response.bool_or("redirected", false);
        const int redirect_budget =
            args.retries * static_cast<int>(pool.size());
        const bool retry_overloaded = overloaded && attempt < args.retries;
        const bool retry_redirected =
            !overloaded && redirected && redirects < redirect_budget;
        if (retry_overloaded || retry_redirected) {
          if (retry_overloaded) {
            ++attempt;
          } else {
            ++redirects;
          }
          const double hint_ms = response.number_or(
              "retry_after_ms", static_cast<double>(args.backoff_ms));
          const double wait_ms = hint_ms * (0.5 + backoff_rng.uniform());
          std::cerr << "pwu_client: "
                    << (overloaded ? "server overloaded" : "session re-homing")
                    << " (" << response.at("error").as_string() << "); retry "
                    << (overloaded ? attempt : redirects) << "/"
                    << (overloaded ? args.retries : redirect_budget) << " in "
                    << static_cast<int>(wait_ms) << " ms";
          if (retry_redirected && pool.size() > 1 &&
              redirects % args.retries == 0) {
            // This endpoint keeps redirecting — its ring view is behind.
            // Re-resolve through the next front-end instead of blindly
            // burning the rest of the budget here.
            pool.rotate();
            std::cerr << "; re-resolving via " << pool.label();
          }
          std::cerr << "\n";
          std::this_thread::sleep_for(
              std::chrono::milliseconds(static_cast<long>(wait_ms)));
          continue;
        }
        throw std::runtime_error("server error: " +
                                 response.at("error").as_string());
      }
      return response;
    } catch (const service::FrameError& e) {
      ++corrupt_replies;
      if (corruptions >= args.retries) {
        throw service::TransportError(
            std::string("persistent reply corruption: ") + e.what());
      }
      ++corruptions;
      const double wait_ms = static_cast<double>(args.backoff_ms) *
                             (0.5 + backoff_rng.uniform());
      std::cerr << "pwu_client: " << e.what() << "; resend " << corruptions
                << "/" << args.retries << " in " << static_cast<int>(wait_ms)
                << " ms\n";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(wait_ms)));
      // Same connection, same line: the server either never saw the request
      // (lost reply was an injected drop upstream of it) or dedups it by
      // the idempotency key and replays the original reply.
    } catch (const service::TransportError& e) {
      if (attempt >= args.retries) throw;
      const double base =
          static_cast<double>(args.backoff_ms) * static_cast<double>(1 << attempt);
      const double wait_ms = base * (0.5 + backoff_rng.uniform());
      ++attempt;
      std::cerr << "pwu_client: " << e.what() << "; retry " << attempt
                << "/" << args.retries << " in " << static_cast<int>(wait_ms)
                << " ms";
      pool.rotate();
      if (pool.size() > 1) std::cerr << " via " << pool.label();
      std::cerr << "\n";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(wait_ms)));
    }
  }
}

json::Value obj(std::initializer_list<std::pair<const std::string, json::Value>>
                    fields) {
  return json::Value(json::Object(fields));
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // broken server pipe reports via errno
  Args args;
  try {
    args = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "pwu_client: " << e.what()
              << "\nusage: pwu_client [--workload NAME] [--strategy NAME] "
                 "[--alpha F] [--ninit N] [--batch N] [--nmax N] [--pool N] "
                 "[--test N] [--trees N] [--seed N] [--checkpoint-at N] "
                 "[--server CMD | --endpoints CMD1,CMD2,...] [--timeout SEC] "
                 "[--retries N] [--backoff MS] [--frame] [--verbose]\n";
    return 2;
  }
  try {
    const auto workload = workloads::make_workload(args.workload);

    EndpointPool pool =
        args.endpoints.empty()
            ? EndpointPool()
            : EndpointPool(args.endpoints, args.timeout, args.frame);
    // Jitter stream independent of the tuning seed: retry timing must not
    // perturb the reproducible measurement stream.
    util::Rng backoff_rng(args.seed ^ 0x9e3779b97f4a7c15ULL);
    std::uint64_t idem_counter = 0;
    std::uint64_t corrupt_replies = 0;
    auto rpc = [&](const json::Value& request) {
      return call(pool, request, args, backoff_rng, idem_counter,
                  corrupt_replies);
    };

    json::Object create_fields{
        {"op", json::Value("create")},       {"session", json::Value("demo")},
        {"workload", json::Value(args.workload)},
        {"strategy", json::Value(args.strategy)},
        {"alpha", json::Value(args.alpha)},  {"n_init", json::Value(args.n_init)},
        {"n_batch", json::Value(args.n_batch)},
        {"n_max", json::Value(args.n_max)},
        {"pool_size", json::Value(args.pool_size)},
        {"test_size", json::Value(args.test_size)},
        {"trees", json::Value(args.trees)},
        {"seed", json::Value(std::to_string(args.seed))}};
    json::Value created = rpc(json::Value(std::move(create_fields)));
    util::Rng measure_rng(
        std::stoull(created.at("measure_seed").as_string()));

    // ---- Drive the session: ask, measure locally, tell. ----
    std::vector<space::Configuration> told_configs;
    std::vector<double> told_labels;
    const std::string ckpt_path =
        "/tmp/pwu_client_" + std::to_string(args.seed) + ".ckpt";
    bool checkpointed = args.checkpoint_at == 0;  // "done" when disabled
    for (;;) {
      json::Value asked = rpc(
          obj({{"op", json::Value("ask")}, {"session", json::Value("demo")}}));
      if (asked.at("done").as_bool()) break;
      for (const json::Value& cand : asked.at("candidates").as_array()) {
        space::Configuration config =
            service::configuration_from_json(cand.at("levels"));
        const double label =
            workload->measure(config, measure_rng, /*repetitions=*/1);
        json::Array levels = cand.at("levels").as_array();
        rpc(obj({{"op", json::Value("tell")},
                 {"session", json::Value("demo")},
                 {"levels", json::Value(std::move(levels))},
                 {"time", json::Value(label)}}));
        told_configs.push_back(std::move(config));
        told_labels.push_back(label);
      }
      if (!checkpointed && told_labels.size() >= args.checkpoint_at) {
        // Kill-and-resume drill: persist, drop the live session, restore.
        rpc(obj({{"op", json::Value("checkpoint")},
                 {"session", json::Value("demo")},
                 {"path", json::Value(ckpt_path)}}));
        rpc(obj({{"op", json::Value("close")},
                 {"session", json::Value("demo")}}));
        rpc(obj({{"op", json::Value("resume")},
                 {"session", json::Value("demo")},
                 {"path", json::Value(ckpt_path)}}));
        std::cout << "checkpoint/resume round-trip at " << told_labels.size()
                  << " samples (" << ckpt_path << ")\n";
        checkpointed = true;
      }
    }
    json::Value final_status = rpc(
        obj({{"op", json::Value("status")}, {"session", json::Value("demo")}}));
    std::cout << "session finished: " << final_status.at("status").dump()
              << "\n";
    if (!args.endpoints.empty()) {
      rpc(obj({{"op", json::Value("shutdown")}}));
    }

    // ---- Equivalent batch run: same master-seed derivation. ----
    core::LearnerConfig learner;
    learner.n_init = args.n_init;
    learner.n_batch = args.n_batch;
    learner.n_max = args.n_max;
    learner.forest.num_trees = args.trees;
    learner.eval_every = args.n_max;  // evaluation density is irrelevant here

    util::Rng master(args.seed);
    util::Rng split_rng = master.fork();
    const space::PoolSplit split = space::make_pool_split(
        workload->space(), args.pool_size, args.test_size, split_rng);
    const core::TestSet test =
        core::build_test_set(*workload, split.test, split_rng);
    util::Rng run_rng = master.fork();
    const core::ActiveLearner learner_driver(*workload, learner);
    const core::LearnerResult batch = learner_driver.run(
        *core::make_strategy(args.strategy, args.alpha), split.pool, test,
        run_rng);

    // ---- Compare label-for-label. ----
    bool identical = batch.train_configs.size() == told_configs.size();
    for (std::size_t i = 0; identical && i < told_configs.size(); ++i) {
      identical = batch.train_configs[i] == told_configs[i] &&
                  batch.train_labels[i] == told_labels[i];
    }
    std::cout << "ask/tell samples: " << told_labels.size()
              << " | batch samples: " << batch.train_labels.size()
              << " | training sets "
              << (identical ? "IDENTICAL (bit-exact)" : "DIVERGED") << "\n";
    if (args.frame) {
      std::cout << "corrupt_replies: " << corrupt_replies
                << " (detected by frame CRC, resynced and retried)\n";
    }
    if (args.checkpoint_at != 0) {
      std::remove(ckpt_path.c_str());
      std::remove((ckpt_path + ".bak").c_str());
    }
    return identical ? 0 : 1;
  } catch (const service::TransportError& e) {
    std::cerr << "pwu_client: server unavailable: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "pwu_client: " << e.what() << "\n";
    return 2;
  }
}
