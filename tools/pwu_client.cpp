// pwu_client — end-to-end ask/tell demo and equivalence check.
//
// Drives a tuning session through the JSON-lines protocol (the same
// dispatch pwu_serve runs), playing the client role: it measures each
// asked configuration on the simulated workload with the measurement
// stream the server hands back, and tells the label. Optionally the
// session is checkpointed, closed, and resumed mid-run — exercising the
// crash-recovery path.
//
// Afterwards the equivalent batch run (core::ActiveLearner::run, same
// seed) is executed and the two training sets are compared label for
// label. Exit status 0 = identical; 1 = diverged. This is the acceptance
// property of the service subsystem, wired into ctest as `cli_client_e2e`.
//
//   pwu_client --workload mm --strategy pwu --nmax 60 --pool 400 \
//              --seed 7 --checkpoint-at 30 [--verbose]

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/active_learner.hpp"
#include "core/metrics.hpp"
#include "service/protocol.hpp"
#include "space/pool.hpp"
#include "util/json.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwu;
namespace json = util::json;

struct Args {
  std::string workload = "atax";
  std::string strategy = "pwu";
  double alpha = 0.05;
  std::size_t n_init = 10;
  std::size_t n_batch = 1;
  std::size_t n_max = 60;
  std::size_t pool_size = 400;
  std::size_t test_size = 200;
  std::size_t trees = 25;
  std::size_t checkpoint_at = 0;  // 0 = no checkpoint/resume round-trip
  std::uint64_t seed = 7;
  bool verbose = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--workload") args.workload = next();
    else if (arg == "--strategy") args.strategy = next();
    else if (arg == "--alpha") args.alpha = std::stod(next());
    else if (arg == "--ninit") args.n_init = std::stoul(next());
    else if (arg == "--batch") args.n_batch = std::stoul(next());
    else if (arg == "--nmax") args.n_max = std::stoul(next());
    else if (arg == "--pool") args.pool_size = std::stoul(next());
    else if (arg == "--test") args.test_size = std::stoul(next());
    else if (arg == "--trees") args.trees = std::stoul(next());
    else if (arg == "--checkpoint-at") args.checkpoint_at = std::stoul(next());
    else if (arg == "--seed") args.seed = std::stoull(next());
    else if (arg == "--verbose") args.verbose = true;
    else throw std::invalid_argument("unrecognized argument: " + arg);
  }
  return args;
}

/// One protocol round-trip, printed when verbose.
json::Value call(service::SessionManager& manager, const json::Value& request,
                 bool verbose) {
  if (verbose) std::cout << ">> " << request.dump() << "\n";
  json::Value response = service::handle_request(manager, request);
  if (verbose) std::cout << "<< " << response.dump() << "\n";
  if (!response.at("ok").as_bool()) {
    throw std::runtime_error("server error: " +
                             response.at("error").as_string());
  }
  return response;
}

json::Value obj(std::initializer_list<std::pair<const std::string, json::Value>>
                    fields) {
  return json::Value(json::Object(fields));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const auto workload = workloads::make_workload(args.workload);

    service::SessionManager manager;
    json::Object create_fields{
        {"op", json::Value("create")},       {"session", json::Value("demo")},
        {"workload", json::Value(args.workload)},
        {"strategy", json::Value(args.strategy)},
        {"alpha", json::Value(args.alpha)},  {"n_init", json::Value(args.n_init)},
        {"n_batch", json::Value(args.n_batch)},
        {"n_max", json::Value(args.n_max)},
        {"pool_size", json::Value(args.pool_size)},
        {"test_size", json::Value(args.test_size)},
        {"trees", json::Value(args.trees)},
        {"seed", json::Value(std::to_string(args.seed))}};
    json::Value created =
        call(manager, json::Value(std::move(create_fields)), args.verbose);
    util::Rng measure_rng(
        std::stoull(created.at("measure_seed").as_string()));

    // ---- Drive the session: ask, measure locally, tell. ----
    std::vector<space::Configuration> told_configs;
    std::vector<double> told_labels;
    const std::string ckpt_path =
        "/tmp/pwu_client_" + std::to_string(args.seed) + ".ckpt";
    bool checkpointed = args.checkpoint_at == 0;  // "done" when disabled
    for (;;) {
      json::Value asked = call(
          manager,
          obj({{"op", json::Value("ask")}, {"session", json::Value("demo")}}),
          args.verbose);
      if (asked.at("done").as_bool()) break;
      for (const json::Value& cand : asked.at("candidates").as_array()) {
        space::Configuration config =
            service::configuration_from_json(cand.at("levels"));
        const double label =
            workload->measure(config, measure_rng, /*repetitions=*/1);
        json::Array levels = cand.at("levels").as_array();
        call(manager,
             obj({{"op", json::Value("tell")},
                  {"session", json::Value("demo")},
                  {"levels", json::Value(std::move(levels))},
                  {"time", json::Value(label)}}),
             args.verbose);
        told_configs.push_back(std::move(config));
        told_labels.push_back(label);
      }
      if (!checkpointed && told_labels.size() >= args.checkpoint_at) {
        // Kill-and-resume drill: persist, drop the live session, restore.
        call(manager,
             obj({{"op", json::Value("checkpoint")},
                  {"session", json::Value("demo")},
                  {"path", json::Value(ckpt_path)}}),
             args.verbose);
        call(manager,
             obj({{"op", json::Value("close")},
                  {"session", json::Value("demo")}}),
             args.verbose);
        call(manager,
             obj({{"op", json::Value("resume")},
                  {"session", json::Value("demo")},
                  {"path", json::Value(ckpt_path)}}),
             args.verbose);
        std::cout << "checkpoint/resume round-trip at " << told_labels.size()
                  << " samples (" << ckpt_path << ")\n";
        checkpointed = true;
      }
    }
    json::Value final_status = call(
        manager,
        obj({{"op", json::Value("status")}, {"session", json::Value("demo")}}),
        args.verbose);
    std::cout << "session finished: " << final_status.at("status").dump()
              << "\n";

    // ---- Equivalent batch run: same master-seed derivation. ----
    core::LearnerConfig learner;
    learner.n_init = args.n_init;
    learner.n_batch = args.n_batch;
    learner.n_max = args.n_max;
    learner.forest.num_trees = args.trees;
    learner.eval_every = args.n_max;  // evaluation density is irrelevant here

    util::Rng master(args.seed);
    util::Rng split_rng = master.fork();
    const space::PoolSplit split = space::make_pool_split(
        workload->space(), args.pool_size, args.test_size, split_rng);
    const core::TestSet test =
        core::build_test_set(*workload, split.test, split_rng);
    util::Rng run_rng = master.fork();
    const core::ActiveLearner learner_driver(*workload, learner);
    const core::LearnerResult batch = learner_driver.run(
        *core::make_strategy(args.strategy, args.alpha), split.pool, test,
        run_rng);

    // ---- Compare label-for-label. ----
    bool identical = batch.train_configs.size() == told_configs.size();
    for (std::size_t i = 0; identical && i < told_configs.size(); ++i) {
      identical = batch.train_configs[i] == told_configs[i] &&
                  batch.train_labels[i] == told_labels[i];
    }
    std::cout << "ask/tell samples: " << told_labels.size()
              << " | batch samples: " << batch.train_labels.size()
              << " | training sets "
              << (identical ? "IDENTICAL (bit-exact)" : "DIVERGED") << "\n";
    if (args.checkpoint_at != 0) std::remove(ckpt_path.c_str());
    return identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pwu_client: " << e.what()
              << "\nusage: pwu_client [--workload NAME] [--strategy NAME] "
                 "[--alpha F] [--ninit N] [--batch N] [--nmax N] [--pool N] "
                 "[--test N] [--trees N] [--seed N] [--checkpoint-at N] "
                 "[--verbose]\n";
    return 2;
  }
}
