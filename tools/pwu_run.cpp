// pwu_run — command-line driver for the full experiment pipeline.
//
//   pwu_run --workload atax --strategies pwu,pbus,maxu --alpha 0.01 \
//           --nmax 300 --repeats 3 --pool 3000 --test 1500 \
//           --surrogate rf --trees 50 --batch 1 --seed 42 \
//           --threads 8 --csv /tmp/out --chart
//
//   pwu_run --list                 # available workloads & strategies
//
// Everything the figure benches do, but parameterized for ad-hoc studies.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/convergence.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace pwu;

struct CliArgs {
  std::map<std::string, std::string> options;
  bool list = false;
  bool chart = false;

  static CliArgs parse(int argc, char** argv) {
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--list") {
        args.list = true;
      } else if (arg == "--chart") {
        args.chart = true;
      } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
        args.options[arg.substr(2)] = argv[++i];
      } else {
        throw std::invalid_argument("unrecognized argument: " + arg);
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const long long v = std::stoll(it->second);
    if (v <= 0) throw std::invalid_argument("--" + key + " must be positive");
    return static_cast<std::size_t>(v);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_catalog() {
  std::cout << "workloads (paper set):";
  for (const auto& n : workloads::all_names()) std::cout << " " << n;
  std::cout << "\nworkloads (extended SPAPT):";
  for (const auto& n : workloads::extended_kernel_names()) {
    std::cout << " " << n;
  }
  std::cout << "\nstrategies: pwu pbus maxu bestperf brs random cv egreedy ei"
            << "\nsurrogates: rf gp\n";
}

int run(const CliArgs& args) {
  const std::string workload_name = args.get("workload", "atax");
  const auto workload = workloads::make_workload(workload_name);

  core::ExperimentSpec spec;
  spec.strategies = split_csv(args.get("strategies", "pwu,pbus"));
  spec.alpha = args.get_double("alpha", 0.05);
  spec.repeats = args.get_size("repeats", 2);
  spec.pool_size = args.get_size("pool", 1500);
  spec.test_size = args.get_size("test", 800);
  spec.learner.n_init = args.get_size("ninit", 10);
  spec.learner.n_max = args.get_size("nmax", 150);
  spec.learner.n_batch = args.get_size("batch", 1);
  spec.learner.surrogate = args.get("surrogate", "rf");
  spec.learner.forest.num_trees = args.get_size("trees", 40);
  spec.learner.eval_every = args.get_size("eval-every", 10);
  spec.learner.measure_repetitions =
      static_cast<int>(args.get_size("measure-reps", 1));
  spec.seed = args.get_size("seed", 42);

  if (workload->space().size() < 1e6L) {
    const auto total = static_cast<std::size_t>(workload->space().size());
    spec.learner.n_max = std::min(spec.learner.n_max, total * 7 / 10);
  }

  // Worker pool for forest fit/predict (0 = single-threaded). Results are
  // identical either way: per-tree rng streams are forked up front.
  const std::size_t threads = args.get_size("threads", 1);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));

  std::cout << "workload " << workload_name << " | alpha " << spec.alpha
            << " | budget " << spec.learner.n_max << " | surrogate "
            << spec.learner.surrogate << " | repeats " << spec.repeats
            << " | threads " << (pool ? pool->num_threads() : 1) << "\n\n";

  const auto result =
      core::run_experiment(*workload, spec, pool ? &*pool : nullptr);
  core::print_series_table(std::cout, result);

  // Budget advice per strategy: where the paper-style trace stops
  // improving (0 = still improving at the end of the budget).
  std::cout << "\nconvergence (samples at which the RMSE plateaus):";
  for (const auto& series : result.series) {
    const std::size_t at = core::converged_sample_count(series);
    std::cout << "  " << series.strategy << "="
              << (at == 0 ? std::string("not yet") : std::to_string(at));
  }
  std::cout << "\n";
  if (args.chart) {
    core::print_rmse_chart(std::cout, result,
                           workload_name + ": RMSE vs #samples");
    core::print_rmse_vs_cost_chart(
        std::cout, result, workload_name + ": RMSE vs cumulative cost");
  }
  const std::string csv_dir = args.get("csv", "");
  if (!csv_dir.empty()) {
    core::write_series_csv(csv_dir, result, "cli");
    std::cout << "\nCSV written to " << csv_dir << "/" << workload_name
              << "_cli.csv\n";
  }
  if (spec.strategies.size() >= 2) {
    const double speedup =
        core::cost_speedup(result, spec.strategies[0], spec.strategies[1]);
    if (std::isfinite(speedup)) {
      std::cout << "\ncost speedup " << spec.strategies[0] << " vs "
                << spec.strategies[1] << " at matched error: "
                << util::TextTable::cell(speedup, 2) << "x\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    if (args.list) {
      print_catalog();
      return 0;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "pwu_run: " << e.what()
              << "\nusage: pwu_run [--list] [--workload NAME] "
                 "[--strategies a,b,...] [--alpha F] [--nmax N] [--ninit N] "
                 "[--batch N] [--repeats N] [--pool N] [--test N] "
                 "[--surrogate rf|gp] [--trees N] [--eval-every N] "
                 "[--measure-reps N] [--seed N] [--threads N] [--csv DIR] "
                 "[--chart]\n";
    return 1;
  }
}
